"""The scenario model: named workloads and suites with JSON round-trip.

A :class:`Scenario` binds a *traffic source* -- a synthetic profile
(``profile:<name>``) or a registered application (``app:<name>``) -- to
the parameters that make it a concrete use-case: generator/builder
parameters, a load scale, a deployment weight (how often the use-case
runs in the field, feeding the ``weighted`` merge policy), an analysis
window and QoS constraints (critical targets). Scenarios build their
:class:`~repro.traffic.trace.TrafficTrace` deterministically, so the
execution engine's content-addressed cache stays valid across processes
and sessions.

A :class:`ScenarioSuite` is an ordered, uniquely-named collection of
scenarios -- the unit the runner synthesizes one robust crossbar for.
Suites round-trip through JSON (:func:`suite_to_dict` /
:func:`suite_from_dict`, :func:`save_suite` / :func:`load_suite`) so
they can be committed, diffed and shipped between machines.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.traffic.profiles import (
    HotspotTrafficConfig,
    PipelineTrafficConfig,
    PoissonTrafficConfig,
    generate_hotspot_trace,
    generate_pipeline_trace,
    generate_poisson_trace,
    scaled_config,
    thin_trace,
)
from repro.traffic.synthetic import SyntheticTrafficConfig, generate_synthetic_trace
from repro.traffic.trace import TrafficTrace

__all__ = [
    "PROFILES",
    "SUITE_FORMAT",
    "Scenario",
    "ScenarioSuite",
    "suite_to_dict",
    "suite_from_dict",
    "save_suite",
    "load_suite",
]

SUITE_FORMAT = "repro-scenario-suite-v1"

PROFILES = {
    "burst": (SyntheticTrafficConfig, generate_synthetic_trace),
    "hotspot": (HotspotTrafficConfig, generate_hotspot_trace),
    "poisson": (PoissonTrafficConfig, generate_poisson_trace),
    "pipeline": (PipelineTrafficConfig, generate_pipeline_trace),
}
"""Synthetic traffic profiles addressable as ``profile:<name>``."""


def _freeze(value: Any) -> Any:
    """JSON-compatible deep-conversion of lists to tuples (configs want
    hashable tuple fields; JSON hands back lists)."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class Scenario:
    """One named use-case of the chip.

    Attributes
    ----------
    name:
        Unique identifier inside a suite; also tags cache keys.
    source:
        ``"profile:<name>"`` (see :data:`PROFILES`) or ``"app:<name>"``
        (a :mod:`repro.apps` registry entry).
    params:
        Keyword arguments for the profile config or application builder.
    load_scale:
        Offered-load multiplier. Profiles scale their generator
        (:func:`~repro.traffic.profiles.scaled_config`); application
        traces support down-scaling via deterministic packet thinning.
    weight:
        Relative deployment frequency, consumed by the ``weighted``
        conflict-merge policy.
    window_size:
        Analysis window override; ``None`` uses the profile default
        (1000 cycles) or the application's recommended window.
    critical_targets:
        QoS annotation forwarded to profile generators: targets whose
        streams carry real-time traffic in this scenario.
    description:
        Free-form documentation.
    """

    name: str
    source: str
    params: Mapping[str, Any] = field(default_factory=dict)
    load_scale: float = 1.0
    weight: float = 1.0
    window_size: Optional[int] = None
    critical_targets: Tuple[int, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        kind, _, rest = self.source.partition(":")
        if kind not in ("profile", "app") or not rest:
            raise ConfigurationError(
                f"scenario source must be 'profile:<name>' or 'app:<name>', "
                f"got {self.source!r}"
            )
        if kind == "profile" and rest not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise ConfigurationError(
                f"unknown traffic profile {rest!r}; available: {known}"
            )
        if self.load_scale <= 0:
            raise ConfigurationError("load_scale must be positive")
        if self.weight <= 0:
            raise ConfigurationError("weight must be positive")
        if self.window_size is not None and self.window_size < 1:
            raise ConfigurationError("window_size must be >= 1 or None")
        # Deep-freeze list params to tuples: profile configs want
        # hashable tuple fields, and JSON round-trips hand lists back --
        # normalizing here keeps reloaded scenarios equal to their
        # originals.
        object.__setattr__(
            self,
            "params",
            {key: _freeze(value) for key, value in self.params.items()},
        )
        object.__setattr__(
            self, "critical_targets", tuple(self.critical_targets)
        )

    @property
    def source_kind(self) -> str:
        """``"profile"`` or ``"app"``."""
        return self.source.partition(":")[0]

    @property
    def source_name(self) -> str:
        """The profile or application registry name."""
        return self.source.partition(":")[2]

    def build_trace(self) -> TrafficTrace:
        """Materialize this scenario's full-crossbar traffic trace.

        Deterministic: equal scenarios always produce record-identical
        traces (generators draw from config-seeded RNG instances, never
        interpreter-global state).
        """
        if self.source_kind == "profile":
            config_cls, generate = PROFILES[self.source_name]
            params = dict(self.params)
            if self.critical_targets:
                params["critical_targets"] = self.critical_targets
            try:
                config = config_cls(**params)
            except TypeError as exc:
                raise ConfigurationError(
                    f"scenario {self.name!r}: bad parameters for profile "
                    f"{self.source_name!r}: {exc}"
                ) from exc
            return generate(scaled_config(config, self.load_scale))
        from repro.apps import build_application
        from repro.apps.registry import default_full_crossbar_trace

        if self.params:
            application = build_application(self.source_name, **dict(self.params))
            trace = application.simulate_full_crossbar().trace
        else:
            # Default builds share one memoized Phase-1 simulation per
            # process -- suites that reuse an application at several
            # load scales simulate it once.
            trace = default_full_crossbar_trace(self.source_name)
        if self.load_scale == 1.0:
            return trace
        if self.load_scale > 1.0:
            raise ConfigurationError(
                f"scenario {self.name!r}: application traces only support "
                f"load_scale <= 1 (deterministic thinning); re-generate the "
                f"workload as a profile to scale load up"
            )
        # zlib.crc32 (not hash()) so the thinning seed survives
        # PYTHONHASHSEED changes across processes.
        return thin_trace(
            trace, self.load_scale, seed=zlib.crc32(self.name.encode("utf-8"))
        )

    def effective_window(self, trace: TrafficTrace) -> int:
        """The analysis window for this scenario, clamped to the trace."""
        if self.window_size is not None:
            window = self.window_size
        elif self.source_kind == "app":
            from repro.apps import build_application

            # Build with this scenario's params: overrides like a custom
            # burst length change the application's recommended window.
            window = build_application(
                self.source_name, **dict(self.params)
            ).default_window
        else:
            window = 1_000
        return max(1, min(window, trace.total_cycles))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "source": self.source,
            "params": dict(self.params),
            "load_scale": self.load_scale,
            "weight": self.weight,
            "window_size": self.window_size,
            "critical_targets": list(self.critical_targets),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Decode a dictionary produced by :meth:`to_dict`."""
        try:
            return cls(
                name=str(payload["name"]),
                source=str(payload["source"]),
                params=dict(payload.get("params", {})),
                load_scale=float(payload.get("load_scale", 1.0)),
                weight=float(payload.get("weight", 1.0)),
                window_size=(
                    None
                    if payload.get("window_size") is None
                    else int(payload["window_size"])
                ),
                critical_targets=tuple(
                    int(t) for t in payload.get("critical_targets", ())
                ),
                description=str(payload.get("description", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed scenario payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class ScenarioSuite:
    """An ordered collection of uniquely-named scenarios."""

    name: str
    scenarios: Tuple[Scenario, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("suite name must be non-empty")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ConfigurationError(
                f"suite {self.name!r} must contain at least one scenario"
            )
        seen = set()
        for scenario in self.scenarios:
            if scenario.name in seen:
                raise ConfigurationError(
                    f"suite {self.name!r} has duplicate scenario "
                    f"{scenario.name!r}"
                )
            seen.add(scenario.name)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    @property
    def weights(self) -> Tuple[float, ...]:
        """Per-scenario deployment weights, in suite order."""
        return tuple(scenario.weight for scenario in self.scenarios)


def suite_to_dict(suite: ScenarioSuite) -> Dict[str, Any]:
    """Encode a suite as a JSON-ready dictionary."""
    return {
        "format": SUITE_FORMAT,
        "name": suite.name,
        "description": suite.description,
        "scenarios": [scenario.to_dict() for scenario in suite.scenarios],
    }


def suite_from_dict(payload: Mapping[str, Any]) -> ScenarioSuite:
    """Decode a dictionary produced by :func:`suite_to_dict`."""
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"suite payload must be an object, got {type(payload)}"
        )
    if payload.get("format") != SUITE_FORMAT:
        raise ConfigurationError(
            f"unsupported suite format {payload.get('format')!r} "
            f"(expected {SUITE_FORMAT!r})"
        )
    try:
        scenarios = tuple(
            Scenario.from_dict(entry) for entry in payload["scenarios"]
        )
        return ScenarioSuite(
            name=str(payload["name"]),
            scenarios=scenarios,
            description=str(payload.get("description", "")),
        )
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed suite payload: {exc}") from exc


def save_suite(suite: ScenarioSuite, path: Union[str, Path]) -> None:
    """Write a suite to ``path`` as formatted JSON."""
    Path(path).write_text(
        json.dumps(suite_to_dict(suite), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_suite(path: Union[str, Path]) -> ScenarioSuite:
    """Read a suite from a JSON file written by :func:`save_suite`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load suite from {path}: {exc}") from exc
    return suite_from_dict(payload)
