"""Design-point comparison on a common application.

:func:`compare_designs` simulates an application on several crossbar
designs and tabulates packet latency and crossbar size -- the measurement
behind the paper's Table 1 (shared/full/partial) and Fig. 4
(average-traffic vs windowed designs, normalized to the full crossbar).

Each design's validation simulation is independent of the others, so
the loop routes through the execution engine: pass
``engine=ExecutionEngine(jobs=4)`` to fan the baselines out over worker
processes (registered applications only -- workers rebuild the
application by name). The default serial engine reproduces the original
in-process behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.apps.descriptor import Application
from repro.core.spec import CrossbarDesign
from repro.exec.engine import ExecutionEngine
from repro.platform.metrics import LatencyStats

__all__ = ["DesignEvaluation", "compare_designs"]


@dataclass(frozen=True)
class DesignEvaluation:
    """One design's measured behaviour on an application.

    ``size_ratio`` normalizes bus count to the *shared* configuration
    (2 buses), matching Table 1's size column; the relative latency
    properties normalize to whichever baseline the caller picks.
    """

    label: str
    bus_count: int
    stats: LatencyStats
    critical_stats: LatencyStats
    finished: bool

    @property
    def size_ratio_vs_shared(self) -> float:
        """Bus count relative to a shared-bus design (2 buses)."""
        return self.bus_count / 2.0

    def relative_latency(self, baseline: "DesignEvaluation") -> tuple:
        """(mean, max) latency relative to ``baseline``."""
        return self.stats.relative_to(baseline.stats)


def compare_designs(
    application: Application,
    designs: Sequence[CrossbarDesign],
    max_cycles: Optional[int] = None,
    cycle_headroom: int = 6,
    engine: Optional[ExecutionEngine] = None,
) -> Dict[str, DesignEvaluation]:
    """Simulate ``application`` on every design; key results by label.

    ``cycle_headroom`` multiplies the application's nominal simulation
    length so that heavily contended designs (a shared bus, an
    average-traffic design) still run their workload to completion.
    """
    budget = max_cycles or application.sim_cycles * cycle_headroom
    run = engine if engine is not None else ExecutionEngine(jobs=1)
    outcomes = run.evaluate_designs(application, designs, budget)
    return {
        outcome.label: DesignEvaluation(
            label=outcome.label,
            bus_count=outcome.bus_count,
            stats=outcome.stats,
            critical_stats=outcome.critical_stats,
            finished=outcome.finished,
        )
        for outcome in outcomes
    }
