"""ASCII charts.

The execution environment has no plotting stack, so the figure benches
render their series as monospace charts alongside the raw numbers.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["bar_chart", "xy_plot"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart with one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def xy_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 12,
    width: int = 56,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter plot of a series on a character grid.

    Points are marked ``*``; the left margin carries the y-range and the
    bottom line the x-range.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return title
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = round((x - x_low) / x_span * (width - 1))
        row = height - 1 - round((y - y_low) / y_span * (height - 1))
        grid[row][column] = "*"
    lines = [title] if title else []
    lines.append(f"{y_label} max={y_high:g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f"{y_label} min={y_low:g}; {x_label}: {x_low:g} .. {x_high:g}"
    )
    return "\n".join(lines)
