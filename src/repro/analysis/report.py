"""Aligned text tables for experiment output."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with two decimals, everything else via ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
