"""Aligned text tables for experiment output."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["format_table", "format_synthesis_result"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with two decimals, everything else via ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_synthesis_result(
    result,
    target_names: Optional[Sequence[str]] = None,
    initiator_names: Optional[Sequence[str]] = None,
) -> str:
    """Human-readable description of a cached/solved synthesis point.

    ``result`` is a :class:`~repro.exec.serialize.SynthesisResult` --
    the portable record shared by the execution engine's cache and the
    CLI. Optional core-name lists turn the binding listings from bare
    indices into platform names.
    """
    design = result.design
    lines = [
        f"designed crossbar: {design.it.num_buses} IT buses + "
        f"{design.ti.num_buses} TI buses = {design.bus_count}",
        f"  window size: {result.window_size} cycles, "
        f"overlap threshold: {result.config.overlap_threshold:.0%}",
        f"  IT conflicts: {result.it_conflicts}, "
        f"search probes: {len(result.it_probes)}",
        f"  TI conflicts: {result.ti_conflicts}, "
        f"search probes: {len(result.ti_probes)}",
        f"  max bus overlap (IT/TI): {design.it.max_bus_overlap}"
        f"/{design.ti.max_bus_overlap} cycles",
    ]

    def describe(index: int, names: Optional[Sequence[str]]) -> str:
        if names is not None and index < len(names):
            return names[index]
        return str(index)

    lines.append("IT binding:")
    for bus in range(design.it.num_buses):
        members = ", ".join(
            describe(t, target_names) for t in design.it.targets_on_bus(bus)
        )
        lines.append(f"  bus {bus}: {members}")
    lines.append("TI binding:")
    for bus in range(design.ti.num_buses):
        members = ", ".join(
            describe(i, initiator_names) for i in design.ti.targets_on_bus(bus)
        )
        lines.append(f"  bus {bus}: {members}")
    return "\n".join(lines)
