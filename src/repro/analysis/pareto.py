"""Design-space exploration: size-performance trade-off fronts.

Section 7.2 of the paper: "depending on the design objective, crossbar
size-performance trade-offs can be explored in our approach by tuning
the analysis parameters (such as the window size, overlap threshold,
etc.)". :func:`explore_design_space` sweeps a (window x threshold) grid,
validates every designed crossbar by re-simulation, and
:func:`pareto_front` filters the non-dominated points -- the menu a
designer actually chooses from.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.apps.descriptor import Application
from repro.core.spec import SynthesisConfig
from repro.core.synthesis import CrossbarSynthesizer
from repro.errors import ConfigurationError
from repro.traffic.trace import TrafficTrace

__all__ = ["DesignPoint", "explore_design_space", "pareto_front"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated parameter combination.

    ``mean_latency`` / ``max_latency`` come from re-simulating the
    application on the designed crossbar; ``bus_count`` is the total
    over both crossbars.
    """

    window_size: int
    overlap_threshold: float
    bus_count: int
    mean_latency: float
    max_latency: int

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (bus_count, mean_latency)."""
        no_worse = (
            self.bus_count <= other.bus_count
            and self.mean_latency <= other.mean_latency
        )
        strictly_better = (
            self.bus_count < other.bus_count
            or self.mean_latency < other.mean_latency
        )
        return no_worse and strictly_better


def explore_design_space(
    application: Application,
    trace: TrafficTrace,
    window_sizes: Sequence[int],
    thresholds: Sequence[float],
    config: Optional[SynthesisConfig] = None,
    cycle_headroom: int = 4,
) -> List[DesignPoint]:
    """Design and validate every (window, threshold) combination."""
    if not window_sizes or not thresholds:
        raise ConfigurationError("need at least one window size and threshold")
    base = config or SynthesisConfig()
    budget = application.sim_cycles * cycle_headroom
    points = []
    for window in window_sizes:
        effective = min(window, trace.total_cycles)
        for threshold in thresholds:
            synthesizer = CrossbarSynthesizer(
                replace(
                    base, window_size=effective, overlap_threshold=threshold
                )
            )
            report = synthesizer.design_from_trace(trace, effective)
            validation = application.simulate(
                report.design.it.as_list(),
                report.design.ti.as_list(),
                budget,
            )
            stats = validation.latency_stats()
            points.append(
                DesignPoint(
                    window_size=effective,
                    overlap_threshold=threshold,
                    bus_count=report.design.bus_count,
                    mean_latency=stats.mean,
                    max_latency=stats.maximum,
                )
            )
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated points, sorted by bus count then latency."""
    front = [
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    ]
    # deduplicate identical (size, latency) pairs from different params
    seen = set()
    unique = []
    for point in sorted(
        front, key=lambda p: (p.bus_count, p.mean_latency, p.window_size)
    ):
        key = (point.bus_count, round(point.mean_latency, 6))
        if key not in seen:
            seen.add(key)
            unique.append(point)
    return unique
