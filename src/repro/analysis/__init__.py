"""Experiment drivers, comparison tables and text plotting.

These helpers regenerate the paper's tables and figures:

* :mod:`~repro.analysis.compare` -- evaluate competing crossbar designs
  on an application and tabulate latency/size (Tables 1-2, Fig. 4),
* :mod:`~repro.analysis.sweep` -- parameter sweeps over window size,
  overlap threshold and burst size (Figs. 5-6),
* :mod:`~repro.analysis.textplot` -- ASCII charts for a plotting-free
  environment,
* :mod:`~repro.analysis.report` -- aligned text tables.
"""

from repro.analysis.compare import DesignEvaluation, compare_designs
from repro.analysis.pareto import DesignPoint, explore_design_space, pareto_front
from repro.analysis.report import format_synthesis_result, format_table
from repro.analysis.sweep import (
    SweepPoint,
    acceptable_window_search,
    overlap_threshold_sweep,
    window_size_sweep,
)
from repro.analysis.textplot import bar_chart, xy_plot

__all__ = [
    "DesignEvaluation",
    "compare_designs",
    "DesignPoint",
    "explore_design_space",
    "pareto_front",
    "format_table",
    "format_synthesis_result",
    "SweepPoint",
    "window_size_sweep",
    "overlap_threshold_sweep",
    "acceptable_window_search",
    "bar_chart",
    "xy_plot",
]
