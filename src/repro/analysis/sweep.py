"""Parameter sweeps for the design-space studies (paper Sec. 7.2/7.4).

Three drivers:

* :func:`window_size_sweep` -- crossbar size as the analysis window
  grows (Fig. 5(a)): near-full below the burst size, compact at a few
  burst lengths, average-like beyond.
* :func:`overlap_threshold_sweep` -- crossbar size as the conflict
  threshold relaxes from 0% to 50% (Fig. 6).
* :func:`acceptable_window_search` -- the largest window whose design
  still meets a latency bound, per burst size (Fig. 5(b)); grows
  roughly linearly with the burst size.

Every sweep point is an independent synthesis run, so all three drivers
are thin: they enumerate :class:`~repro.exec.engine.SynthesisTask`
points and hand them to the :class:`~repro.exec.engine.ExecutionEngine`,
which solves each through the staged pipeline (:mod:`repro.pipeline`).
Pass ``engine=ExecutionEngine(jobs=8, cache="...")`` to fan points out
over worker processes and/or skip already-solved points. Results are
deterministic -- identical point lists whatever the job count.

The pipeline is what makes sweeps cheap beyond caching: every point of
a sweep shares the trace's *collection* artifact, a threshold sweep's
points share the *windowing* artifacts outright (only conflicts and the
solve re-run per threshold), and the columnar kernel compilation
(:func:`repro.traffic.kernels.warm_analytics`, covering the mirrored
trace for the TI side) is warmed once per sweep, not once per point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.apps.descriptor import Application
from repro.core.spec import SynthesisConfig
from repro.errors import ConfigurationError
from repro.exec.engine import ExecutionEngine, SynthesisTask
from repro.exec.fingerprint import trace_fingerprint
from repro.traffic.trace import TrafficTrace

__all__ = [
    "SweepPoint",
    "window_size_sweep",
    "overlap_threshold_sweep",
    "acceptable_window_search",
]


def _window_tasks(
    trace: TrafficTrace, windows: Sequence[int], base: SynthesisConfig
) -> List[SynthesisTask]:
    """One task per window, clamped to the trace length.

    Clamping happens *before* task construction so equal effective
    windows collapse to one pipeline point (and one cache entry).
    """
    tasks = []
    for window in windows:
        effective = min(window, trace.total_cycles)
        tasks.append(
            SynthesisTask(
                config=replace(base, window_size=effective),
                window_size=effective,
            )
        )
    return tasks


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the swept value and the resulting design size."""

    value: float
    it_buses: int
    ti_buses: int

    @property
    def total_buses(self) -> int:
        return self.it_buses + self.ti_buses


def _resolve_engine(engine: Optional[ExecutionEngine]) -> ExecutionEngine:
    return engine if engine is not None else ExecutionEngine(jobs=1)


def window_size_sweep(
    trace: TrafficTrace,
    window_sizes: Sequence[int],
    config: Optional[SynthesisConfig] = None,
    engine: Optional[ExecutionEngine] = None,
) -> List[SweepPoint]:
    """Design the crossbar for each window size (Fig. 5(a))."""
    tasks = _window_tasks(trace, window_sizes, config or SynthesisConfig())
    results = _resolve_engine(engine).run_sweep(trace, tasks)
    return [
        SweepPoint(
            value=float(window),
            it_buses=result.design.it.num_buses,
            ti_buses=result.design.ti.num_buses,
        )
        for window, result in zip(window_sizes, results)
    ]


def overlap_threshold_sweep(
    trace: TrafficTrace,
    thresholds: Sequence[float],
    window_size: int,
    config: Optional[SynthesisConfig] = None,
    engine: Optional[ExecutionEngine] = None,
) -> List[SweepPoint]:
    """Design the crossbar for each overlap threshold (Fig. 6)."""
    base = config or SynthesisConfig()
    tasks = [
        SynthesisTask(
            config=replace(
                base, window_size=window_size, overlap_threshold=threshold
            ),
            window_size=window_size,
        )
        for threshold in thresholds
    ]
    results = _resolve_engine(engine).run_sweep(trace, tasks)
    return [
        SweepPoint(
            value=threshold,
            it_buses=result.design.it.num_buses,
            ti_buses=result.design.ti.num_buses,
        )
        for threshold, result in zip(thresholds, results)
    ]


def acceptable_window_search(
    application: Application,
    trace: TrafficTrace,
    candidate_windows: Sequence[int],
    max_latency_ratio: float = 1.5,
    max_peak_ratio: float = 3.0,
    config: Optional[SynthesisConfig] = None,
    engine: Optional[ExecutionEngine] = None,
) -> int:
    """Largest window whose designed crossbar meets the latency bounds.

    For each candidate window (ascending), the crossbar is designed and
    the application re-simulated on it; the acceptable window is the
    largest one whose *average* packet latency stays within
    ``max_latency_ratio`` and whose *maximum* packet latency within
    ``max_peak_ratio`` of the full crossbar's (Fig. 5(b) calls these
    "acceptable window sizes" -- the paper stresses that over-large
    windows hurt the worst case first). Candidates beyond the first
    failing window are skipped, since larger windows only shrink the
    design.

    Validation simulations are inherently sequential (each depends on
    the previous verdict via early exit), but the synthesis half of
    every candidate is independent: a parallel ``engine`` pre-solves all
    candidate designs up front, trading a little speculative work for
    wall-clock time; a serial engine keeps the original lazy,
    stop-at-first-failure behaviour.
    """
    if not candidate_windows:
        raise ConfigurationError("need at least one candidate window")
    base = config or SynthesisConfig()
    run = _resolve_engine(engine)
    full = application.simulate_full_crossbar()
    full_stats = full.latency_stats()
    full_mean = full_stats.mean or 1.0
    full_peak = full_stats.maximum or 1
    budget = application.sim_cycles * 6

    ordered = sorted(candidate_windows)
    tasks = _window_tasks(trace, ordered, base)
    digest = trace_fingerprint(trace) if run.cache is not None else None
    if run.jobs > 1:
        results = run.run_sweep(
            trace, tasks, application=application.name, trace_digest=digest
        )
    else:
        results = None  # lazy: solve one candidate at a time below

    best = 0
    for position, window in enumerate(ordered):
        if results is not None:
            result = results[position]
        else:
            result = run.run_sweep(
                trace,
                [tasks[position]],
                application=application.name,
                trace_digest=digest,
            )[0]
        validation = application.simulate(
            result.design.it.as_list(), result.design.ti.as_list(), budget
        )
        stats = validation.latency_stats()
        mean_ok = stats.mean / full_mean <= max_latency_ratio
        peak_ok = stats.maximum / full_peak <= max_peak_ratio
        if mean_ok and peak_ok:
            best = window
        else:
            break
    return best
