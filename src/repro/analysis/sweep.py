"""Parameter sweeps for the design-space studies (paper Sec. 7.2/7.4).

Three drivers:

* :func:`window_size_sweep` -- crossbar size as the analysis window
  grows (Fig. 5(a)): near-full below the burst size, compact at a few
  burst lengths, average-like beyond.
* :func:`overlap_threshold_sweep` -- crossbar size as the conflict
  threshold relaxes from 0% to 50% (Fig. 6).
* :func:`acceptable_window_search` -- the largest window whose design
  still meets a latency bound, per burst size (Fig. 5(b)); grows
  roughly linearly with the burst size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.apps.descriptor import Application
from repro.core.spec import SynthesisConfig
from repro.core.synthesis import CrossbarSynthesizer
from repro.errors import ConfigurationError
from repro.traffic.trace import TrafficTrace

__all__ = [
    "SweepPoint",
    "window_size_sweep",
    "overlap_threshold_sweep",
    "acceptable_window_search",
]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the swept value and the resulting design size."""

    value: float
    it_buses: int
    ti_buses: int

    @property
    def total_buses(self) -> int:
        return self.it_buses + self.ti_buses


def window_size_sweep(
    trace: TrafficTrace,
    window_sizes: Sequence[int],
    config: Optional[SynthesisConfig] = None,
) -> List[SweepPoint]:
    """Design the crossbar for each window size (Fig. 5(a))."""
    base = config or SynthesisConfig()
    points = []
    for window in window_sizes:
        effective = min(window, trace.total_cycles)
        report = CrossbarSynthesizer(
            replace(base, window_size=effective)
        ).design_from_trace(trace, effective)
        points.append(
            SweepPoint(
                value=float(window),
                it_buses=report.design.it.num_buses,
                ti_buses=report.design.ti.num_buses,
            )
        )
    return points


def overlap_threshold_sweep(
    trace: TrafficTrace,
    thresholds: Sequence[float],
    window_size: int,
    config: Optional[SynthesisConfig] = None,
) -> List[SweepPoint]:
    """Design the crossbar for each overlap threshold (Fig. 6)."""
    base = config or SynthesisConfig()
    points = []
    for threshold in thresholds:
        report = CrossbarSynthesizer(
            replace(base, window_size=window_size, overlap_threshold=threshold)
        ).design_from_trace(trace, window_size)
        points.append(
            SweepPoint(
                value=threshold,
                it_buses=report.design.it.num_buses,
                ti_buses=report.design.ti.num_buses,
            )
        )
    return points


def acceptable_window_search(
    application: Application,
    trace: TrafficTrace,
    candidate_windows: Sequence[int],
    max_latency_ratio: float = 1.5,
    max_peak_ratio: float = 3.0,
    config: Optional[SynthesisConfig] = None,
) -> int:
    """Largest window whose designed crossbar meets the latency bounds.

    For each candidate window (ascending), the crossbar is designed and
    the application re-simulated on it; the acceptable window is the
    largest one whose *average* packet latency stays within
    ``max_latency_ratio`` and whose *maximum* packet latency within
    ``max_peak_ratio`` of the full crossbar's (Fig. 5(b) calls these
    "acceptable window sizes" -- the paper stresses that over-large
    windows hurt the worst case first). Candidates beyond the first
    failing window are skipped, since larger windows only shrink the
    design.
    """
    if not candidate_windows:
        raise ConfigurationError("need at least one candidate window")
    base = config or SynthesisConfig()
    full = application.simulate_full_crossbar()
    full_stats = full.latency_stats()
    full_mean = full_stats.mean or 1.0
    full_peak = full_stats.maximum or 1
    budget = application.sim_cycles * 6
    best = 0
    for window in sorted(candidate_windows):
        effective = min(window, trace.total_cycles)
        synthesizer = CrossbarSynthesizer(replace(base, window_size=effective))
        report = synthesizer.design_from_trace(trace, effective)
        validation = application.simulate(
            report.design.it.as_list(), report.design.ti.as_list(), budget
        )
        stats = validation.latency_stats()
        mean_ok = stats.mean / full_mean <= max_latency_ratio
        peak_ok = stats.maximum / full_peak <= max_peak_ratio
        if mean_ok and peak_ok:
            best = window
        else:
            break
    return best
