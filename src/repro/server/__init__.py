"""Synthesis-as-a-service: the ``repro serve`` daemon.

The reproduction's front ends so far were one-shot processes: build a
trace, solve, print, exit. This subpackage turns the same platform into
a long-lived HTTP/JSON service -- the deployment shape a design team
actually shares a solver farm through:

* :mod:`~repro.server.schemas` -- validated job requests with content
  fingerprints (the coalescing key),
* :mod:`~repro.server.coalesce` -- single-flight admission: identical
  in-flight requests share one solve,
* :mod:`~repro.server.jobs` -- the async job model and worker queue
  with graceful draining,
* :mod:`~repro.server.service` -- jobs wired to the execution engine,
  pipeline stores and caches (HTTP-free, directly testable),
* :mod:`~repro.server.app` -- the stdlib ``ThreadingHTTPServer``
  surface (``POST /v1/jobs``, ``GET /v1/jobs/<id>``, ``/v1/stats``,
  ``/v1/health``).

The daemon is hardened for long-lived operation: per-job wall-clock
timeouts, cancellation of queued jobs (``DELETE /v1/jobs/<id>``), TTL
eviction of finished jobs from both registries, queue-depth load
shedding (503 + ``Retry-After``), and a health endpoint that reports
*degraded* -- with reasons -- whenever the engine fell back from its
process pool, jobs timed out, or requests were shed.

No third-party dependencies: the daemon is ``python -m``-grade stdlib
HTTP on top of the existing engine, exactly like the rest of the repo.
"""

from repro.server.coalesce import RequestCoalescer
from repro.server.jobs import Job, JobQueue
from repro.server.schemas import (
    DesignRequest,
    JobRequest,
    RequestError,
    SuiteRequest,
    parse_job_request,
)
from repro.server.service import ServiceOverloaded, SynthesisService
from repro.server.app import SynthesisServer, serve

__all__ = [
    "RequestCoalescer",
    "Job",
    "JobQueue",
    "JobRequest",
    "DesignRequest",
    "SuiteRequest",
    "RequestError",
    "parse_job_request",
    "ServiceOverloaded",
    "SynthesisService",
    "SynthesisServer",
    "serve",
]
