"""The synthesis service: jobs wired to the platform underneath.

:class:`SynthesisService` is the HTTP-free core of the daemon -- the
app layer (:mod:`repro.server.app`) only translates requests into
:meth:`SynthesisService.submit` / job lookups / :meth:`stats` calls, so
everything here is directly testable without sockets.

One service owns:

* one :class:`~repro.exec.engine.ExecutionEngine` (shared whole-result
  :class:`~repro.exec.cache.ResultCache` and parallelism budget); suite
  jobs run on job-scoped engines (:meth:`ExecutionEngine.scoped`)
  sharing that cache instance, so concurrent jobs never contend on a
  pool but do share every solved point;
* one :class:`~repro.server.coalesce.RequestCoalescer` keyed by request
  content fingerprints -- identical in-flight requests share a single
  solve, repeated finished requests are served from the registry;
* one :class:`~repro.server.jobs.JobQueue` of daemon workers.

Warm paths stack beneath the coalescer: a design request whose task key
is already in the whole-result cache completes instantly (disposition
``"cached"``) without ever enqueueing, and a request that must run still
reuses persisted stage artifacts (windows, conflicts, bindings) through
its job-scoped :class:`~repro.pipeline.PipelineRunner` store.

Per-job progress is streamed by subscribing the job's
:meth:`~repro.server.jobs.Job.record_progress` to the runner's
:class:`~repro.pipeline.store.StageCounters`; pollers see live
per-stage computed/memo-hit/disk-hit/shm-hit tallies while the job
runs. Jobs additionally share window artifacts *across* their
per-job stores through the shared stage plane
(:mod:`repro.pipeline.shm`): a multi-fingerprint burst -- same trace,
different solver knobs -- windows the trace once, service-wide.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core import CrossbarSynthesizer, SynthesisConfig
from repro.core.instrumentation import SOLVE_COUNTER
from repro.exec.cache import ResultCache
from repro.exec.engine import ExecutionEngine
from repro.exec.fingerprint import task_key, trace_fingerprint
from repro.exec.serialize import (
    RESULT_FORMAT,
    SynthesisResult,
    result_to_dict,
)
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.jsonlog import JsonLogger
from repro.pipeline import ArtifactStore, PipelineRunner
from repro.pipeline import shm as _shm
from repro.resilience import fault_summary
from repro.server.coalesce import RequestCoalescer
from repro.server.jobs import Job, JobQueue
from repro.server.schemas import (
    DesignRequest,
    SuiteRequest,
    parse_job_request,
)

__all__ = ["SynthesisService", "ServiceOverloaded", "DESIGN_REPORT_FORMAT"]

DESIGN_REPORT_FORMAT = "repro-server-design-v1"

_REQUESTS_TOTAL = _metrics.counter(
    "repro_requests_total",
    "Admitted job requests by disposition (new/coalesced/finished/"
    "cached/shed).",
    ("disposition",),
)
_QUEUE_DEPTH = _metrics.gauge(
    "repro_queue_depth", "Jobs admitted but not yet picked up by a worker."
)
_JOBS_ACTIVE = _metrics.gauge(
    "repro_jobs_active", "Jobs currently executing on a worker thread."
)


class ServiceOverloaded(RuntimeError):
    """The job queue is at capacity; the request was shed, not queued.

    Raised from admission (inside the coalescer's ``create`` callback,
    so nothing is registered for the shed fingerprint) when
    ``max_queue_depth`` is configured and reached. The app layer maps
    it to ``503`` with a ``Retry-After`` header -- load shedding is an
    invitation to come back, not a failure of the request itself.
    """

    def __init__(self, depth: int, retry_after: float = 1.0) -> None:
        super().__init__(
            f"job queue at capacity ({depth} queued); retry shortly"
        )
        self.depth = depth
        self.retry_after = retry_after


class SynthesisService:
    """Content-addressed synthesis jobs over the execution platform.

    Parameters
    ----------
    engine_jobs:
        Process-pool width of each job's engine (1 = serial in the
        worker thread).
    cache_dir:
        Whole-result/stage cache directory; ``None`` disables every
        disk layer (in-flight coalescing still works).
    workers:
        Concurrent job slots in the queue.
    job_timeout:
        Per-job wall-clock bound in seconds (see
        :class:`~repro.server.jobs.JobQueue`); ``None`` disables it.
    finished_ttl:
        Seconds finished jobs stay answerable from the registries
        (job index and coalescer alike) before eviction; ``None``
        keeps them forever.
    max_queue_depth:
        Admission bound: a *new* request arriving while this many jobs
        are already queued is shed with :class:`ServiceOverloaded`
        (503 at the HTTP layer). Coalesced/finished/cached requests
        are never shed -- they cost no queue slot. ``None`` disables
        shedding.
    trace:
        Arm span tracing for the service's lifetime (the default): each
        executed job gets its own trace tree, retrievable via
        :meth:`job_trace` (``GET /v1/jobs/<id>/trace``). When tracing
        was already armed by the caller, the service joins it and
        leaves disarming to whoever armed it.
    log:
        An optional :class:`~repro.obs.jsonlog.JsonLogger`; when given,
        one JSON object per admission and job transition goes to
        stderr (the ``repro serve --log-json`` mode).
    """

    def __init__(
        self,
        engine_jobs: int = 1,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        job_timeout: Optional[float] = None,
        finished_ttl: Optional[float] = None,
        max_queue_depth: Optional[int] = None,
        trace: bool = True,
        log: Optional[JsonLogger] = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 or None")
        self.log = log
        self._armed_tracing = False
        if trace and not _tracing.tracing_enabled():
            _tracing.arm_tracing()
            self._armed_tracing = True
        self.engine = ExecutionEngine(jobs=engine_jobs, cache=cache_dir)
        self.coalescer = RequestCoalescer(finished_ttl=finished_ttl)
        self.queue = JobQueue(
            self._execute, workers=workers, job_timeout=job_timeout
        )
        self.finished_ttl = finished_ttl
        self.max_queue_depth = max_queue_depth
        self._stats_lock = threading.Lock()
        self._cached_hits = 0
        self._shed = 0
        self._solves = 0
        # Solver-level observability: every MILP/assignment solve in
        # this process tallies here (job threads and the serial path
        # alike; pool workers solve in children, which is precisely the
        # signal -- in-process solves are the coalescable ones).
        self._solve_observer = self._on_solve
        SOLVE_COUNTER.subscribe(self._solve_observer)
        # Queue gauges are callback-backed: sampled at scrape time, so
        # they are always current and cost nothing between scrapes.
        _QUEUE_DEPTH.set_function(self.queue.depth)
        _JOBS_ACTIVE.set_function(self.queue.active)

    def _on_solve(self, kind: str) -> None:
        with self._stats_lock:
            self._solves += 1

    def close(self, drain: bool = True) -> None:
        """Stop the queue (draining by default) and detach observers."""
        self.queue.shutdown(drain=drain)
        try:
            SOLVE_COUNTER.unsubscribe(self._solve_observer)
        except ValueError:  # pragma: no cover - already detached
            pass
        _QUEUE_DEPTH.set_function(None)
        _JOBS_ACTIVE.set_function(None)
        if self._armed_tracing:
            _tracing.disarm_tracing()
            self._armed_tracing = False

    # -- admission ----------------------------------------------------

    def submit(self, payload: Any) -> Tuple[Job, str]:
        """Parse, content-address, coalesce and (if new) enqueue.

        Returns ``(job, disposition)`` where disposition extends the
        coalescer's vocabulary with ``"cached"``: the request was new to
        the registry but its result was already in the whole-result
        cache, so the job completed synchronously without queueing.

        Raises :class:`~repro.server.schemas.RequestError` on malformed
        payloads -- nothing invalid is ever admitted -- and
        :class:`ServiceOverloaded` when a genuinely new request finds
        the queue at its configured depth bound (shedding happens
        inside the coalescer's ``create`` callback, so a shed request
        leaves no registry entry behind and coalesced/finished/cached
        answers are never shed).
        """
        request = parse_job_request(payload)
        fingerprint = request.fingerprint()
        self._evict_expired()
        job, disposition = self.coalescer.admit(
            fingerprint,
            lambda: self._admit_new(request, fingerprint),
        )
        if disposition != "new":
            self._record_admission(fingerprint, disposition)
            return job, disposition
        warm = self._warm_lookup(request)
        if warm is not None:
            with self._stats_lock:
                self._cached_hits += 1
            job.mark_done(warm)
            self._record_admission(fingerprint, "cached")
            return job, "cached"
        self.queue.submit(job)
        self._record_admission(fingerprint, "new")
        return job, "new"

    def _record_admission(self, fingerprint: str, disposition: str) -> None:
        _REQUESTS_TOTAL.inc(disposition=disposition)
        if self.log is not None:
            self.log.emit(
                "request.admitted",
                fingerprint=fingerprint,
                disposition=disposition,
            )

    def _admit_new(self, request, fingerprint: str) -> Job:
        """The coalescer's ``create`` callback: shed or index a job."""
        if self.max_queue_depth is not None:
            depth = self.queue.depth()
            if depth >= self.max_queue_depth:
                with self._stats_lock:
                    self._shed += 1
                self._record_admission(fingerprint, "shed")
                raise ServiceOverloaded(depth)
        return self.queue.new_job(request, fingerprint)

    def _evict_expired(self) -> None:
        """Opportunistic TTL maintenance (no background thread needed:
        any submit or stats read sweeps both registries)."""
        if self.finished_ttl is None:
            return
        for job in self.queue.evict_terminal(self.finished_ttl):
            self.coalescer.forget(job.fingerprint)

    def cancel(self, job_id: str) -> Optional[bool]:
        """Cancel a queued job: ``True`` if cancelled, ``False`` if the
        job exists but is running or terminal, ``None`` if unknown."""
        job = self.queue.get(job_id)
        if job is None:
            return None
        return job.cancel()

    def _warm_lookup(self, request) -> Optional[Dict[str, Any]]:
        """A completed result from the persistent caches, or ``None``.

        Design points are whole-result cached under their task key, so
        a restarted daemon still answers repeat requests without
        queueing them. Suite reports are not whole-result cached (their
        stage artifacts are), so suites always queue -- their warm path
        is fast, not instant.
        """
        if not isinstance(request, DesignRequest):
            return None
        if self.engine.cache is None:
            return None
        trace, config, window = self._design_inputs(request)
        key = task_key(
            trace_fingerprint(trace), config, window, request.app
        )
        cached = self.engine.cache.get(key)
        if cached is None:
            return None
        return self._design_payload(request, trace, config, window, cached)

    # -- execution ----------------------------------------------------

    def _execute(self, job: Job) -> Dict[str, Any]:
        request = job.request
        began = time.perf_counter()
        if self.log is not None:
            self.log.emit(
                "job.started",
                job=job.id,
                kind=request.kind,
                fingerprint=job.fingerprint,
            )
        try:
            with _tracing.root_span(
                f"job.{request.kind}",
                job=job.id,
                fingerprint=job.fingerprint[:12],
            ) as root:
                # Published immediately, not on completion: pollers of a
                # running job can already follow its partial trace.
                job.trace_id = root.trace_id or None
                if isinstance(request, DesignRequest):
                    result = self._run_design(job, request)
                elif isinstance(request, SuiteRequest):
                    result = self._run_suite(job, request)
                else:  # pragma: no cover - parser admits only known kinds
                    raise TypeError(
                        f"no executor for request type "
                        f"{type(request).__name__}"
                    )
        except Exception as error:
            if self.log is not None:
                self.log.emit(
                    "job.finished",
                    job=job.id,
                    state="failed",
                    error=f"{type(error).__name__}: {error}",
                    duration_s=round(time.perf_counter() - began, 6),
                    trace_id=job.trace_id,
                )
            raise
        if self.log is not None:
            self.log.emit(
                "job.finished",
                job=job.id,
                state="done",
                duration_s=round(time.perf_counter() - began, 6),
                trace_id=job.trace_id,
            )
        return result

    def _job_runner(self) -> PipelineRunner:
        """A job-scoped stage runner persisting through the shared
        cache directory (separate :class:`ResultCache` instance, same
        accounting discipline as the suite runner's)."""
        disk = None
        if self.engine.cache is not None:
            disk = ResultCache(self.engine.cache.cache_dir)
        return PipelineRunner(
            store=ArtifactStore(disk=disk), memoize_bindings=True
        )

    @staticmethod
    def _design_inputs(request: DesignRequest):
        from repro.apps import default_full_crossbar_trace

        trace = default_full_crossbar_trace(request.app)
        config = SynthesisConfig(
            window_size=request.window,
            overlap_threshold=request.threshold,
            max_targets_per_bus=request.maxtb,
            backend=request.backend,
        )
        return trace, config, request.resolved_window()

    def _design_payload(
        self,
        request: DesignRequest,
        trace,
        config: SynthesisConfig,
        window: int,
        result: SynthesisResult,
    ) -> Dict[str, Any]:
        runner = PipelineRunner()  # fingerprint derivation only
        return {
            "format": DESIGN_REPORT_FORMAT,
            "app": request.app,
            "window": window,
            "design_fingerprint": runner.design_fingerprint(
                trace_fingerprint(trace), config, window
            ),
            "result": result_to_dict(result),
            "result_format": RESULT_FORMAT,
        }

    def _run_design(
        self, job: Job, request: DesignRequest
    ) -> Dict[str, Any]:
        trace, config, window = self._design_inputs(request)
        runner = self._job_runner()
        runner.counters.subscribe(job.record_progress)
        try:
            report = CrossbarSynthesizer(
                config, pipeline=runner
            ).design_from_trace(trace, window)
        finally:
            runner.counters.unsubscribe(job.record_progress)
        result = SynthesisResult.from_report(report)
        if self.engine.cache is not None:
            key = task_key(
                trace_fingerprint(trace), config, window, request.app
            )
            self.engine.cache.put(key, result)
        return self._design_payload(request, trace, config, window, result)

    def _run_suite(self, job: Job, request: SuiteRequest) -> Dict[str, Any]:
        from repro.scenarios import (
            ScenarioSuiteRunner,
            build_suite,
            suite_from_dict,
        )

        if request.suite:
            suite = build_suite(request.suite)
        else:
            suite = suite_from_dict(request.suite_dict())
        runner = ScenarioSuiteRunner(
            engine=self.engine.scoped(),
            config=SynthesisConfig(
                overlap_threshold=request.threshold,
                max_targets_per_bus=request.maxtb,
            ),
            policy=request.policy,
            min_weight=request.min_weight,
            replay_latency=request.replay_latency,
            pipeline=self._job_runner(),
        )
        runner.pipeline.counters.subscribe(job.record_progress)
        try:
            report = runner.run(suite)
        finally:
            runner.pipeline.counters.unsubscribe(job.record_progress)
        return report.to_dict()

    # -- observability ------------------------------------------------

    def job_trace(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The span tree of one job (``GET /v1/jobs/<id>/trace``).

        ``None`` for unknown jobs. A known job whose tracing was
        disarmed (or that has not started) answers with an empty span
        list rather than a 404 -- the job exists, it just has no trace.
        Worker-process spans are merged in from the spool directory, so
        a finished pool job's tree includes its child-process solves.
        """
        job = self.queue.get(job_id)
        if job is None:
            return None
        spans: List[Dict[str, Any]] = []
        if job.trace_id is not None:
            spans = [
                span.to_dict()
                for span in _tracing.collect_spans(trace_id=job.trace_id)
            ]
        return {"job": job.id, "trace_id": job.trace_id, "spans": spans}

    def degraded_reasons(self) -> list:
        """Why the service considers itself degraded (empty = healthy).

        Degraded is sticky by design: the counters accumulate for the
        daemon's lifetime, so a health probe after a burst of pool
        failures still reports that something went wrong -- operators
        reset by restarting, not by waiting out a rolling window.
        """
        reasons = []
        engine = self.engine.stats.snapshot()
        if engine["serial_fallbacks"]:
            reasons.append(
                f"engine degraded to serial execution "
                f"{engine['serial_fallbacks']} time(s)"
            )
        if engine["pool_rebuilds"]:
            reasons.append(
                f"engine rebuilt a broken worker pool "
                f"{engine['pool_rebuilds']} time(s)"
            )
        timeouts = self.queue.timeouts()
        if timeouts:
            reasons.append(f"{timeouts} job(s) hit the per-job timeout")
        with self._stats_lock:
            shed = self._shed
        if shed:
            reasons.append(f"{shed} request(s) shed at the queue bound")
        return reasons

    def health(self) -> Dict[str, Any]:
        """The ``/v1/health`` payload: liveness plus degradation."""
        reasons = self.degraded_reasons()
        return {
            "status": "degraded" if reasons else "ok",
            "degraded": bool(reasons),
            "reasons": reasons,
        }

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload (see docs/http-api.md)."""
        self._evict_expired()
        jobs = self.queue.jobs()
        states: Dict[str, int] = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        payload: Dict[str, Any] = {
            "queue": {
                "depth": self.queue.depth(),
                "active": self.queue.active(),
                "jobs": states,
                "timeouts": self.queue.timeouts(),
                "job_timeout": self.queue.job_timeout,
            },
            "coalescing": self.coalescer.stats(),
            "shedding": {
                "max_queue_depth": self.max_queue_depth,
            },
            "engine": self.engine.stats.snapshot(),
            "faults": fault_summary(),
            # The shared stage plane: concurrent jobs over different
            # design fingerprints resolve common window stages from one
            # process-wide set of tensors (zero-copy), tallied here.
            "shm": _shm.plane_summary(),
        }
        # Atomic snapshots, not field-by-field reads: the old code read
        # ``SOLVE_COUNTER.feasibility`` and ``.binding`` (and the cache
        # stat fields below) as separate unlocked attribute reads, so a
        # concurrent solve could make the two numbers disagree with
        # each other and with their total. One locked cut per source.
        solves = SOLVE_COUNTER.snapshot()
        payload["solves"] = {
            "feasibility": solves["feasibility"],
            "binding": solves["binding"],
            "by_backend": solves["by_backend"],
        }
        # Solver-tier visibility: the default MILP backend this process
        # would resolve right now, plus portfolio race outcomes.
        from repro.milp import race_win_counts, resolve_default_backend

        try:
            default_backend = resolve_default_backend()
        except Exception:  # noqa: BLE001 - a bad env var must not 500 /v1/stats
            default_backend = "invalid"
        payload["milp"] = {
            "backend": default_backend,
            "race_wins": race_win_counts(),
        }
        with self._stats_lock:
            payload["solves"]["in_process"] = self._solves
            payload["coalescing"]["cached_hits"] = self._cached_hits
            payload["shedding"]["shed"] = self._shed
        cache = self.engine.cache
        if cache is not None:
            usage = cache.usage()
            cache_stats = cache.stats_snapshot()
            payload["cache"] = {
                "dir": str(cache.cache_dir),
                "entries": usage.entries,
                "total_bytes": usage.total_bytes,
                "hits": cache_stats["hits"],
                "misses": cache_stats["misses"],
                "stores": cache_stats["stores"],
                "write_errors": cache_stats["write_errors"],
            }
        else:
            payload["cache"] = None
        return payload
