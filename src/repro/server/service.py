"""The synthesis service: jobs wired to the platform underneath.

:class:`SynthesisService` is the HTTP-free core of the daemon -- the
app layer (:mod:`repro.server.app`) only translates requests into
:meth:`SynthesisService.submit` / job lookups / :meth:`stats` calls, so
everything here is directly testable without sockets.

One service owns:

* one :class:`~repro.exec.engine.ExecutionEngine` (shared whole-result
  :class:`~repro.exec.cache.ResultCache` and parallelism budget); suite
  jobs run on job-scoped engines (:meth:`ExecutionEngine.scoped`)
  sharing that cache instance, so concurrent jobs never contend on a
  pool but do share every solved point;
* one :class:`~repro.server.coalesce.RequestCoalescer` keyed by request
  content fingerprints -- identical in-flight requests share a single
  solve, repeated finished requests are served from the registry;
* one :class:`~repro.server.jobs.JobQueue` of daemon workers.

Warm paths stack beneath the coalescer: a design request whose task key
is already in the whole-result cache completes instantly (disposition
``"cached"``) without ever enqueueing, and a request that must run still
reuses persisted stage artifacts (windows, conflicts, bindings) through
its job-scoped :class:`~repro.pipeline.PipelineRunner` store.

Per-job progress is streamed by subscribing the job's
:meth:`~repro.server.jobs.Job.record_progress` to the runner's
:class:`~repro.pipeline.store.StageCounters`; pollers see live
per-stage computed/memo-hit/disk-hit tallies while the job runs.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple, Union

from repro.core import CrossbarSynthesizer, SynthesisConfig
from repro.core.instrumentation import SOLVE_COUNTER
from repro.exec.cache import ResultCache
from repro.exec.engine import ExecutionEngine
from repro.exec.fingerprint import task_key, trace_fingerprint
from repro.exec.serialize import (
    RESULT_FORMAT,
    SynthesisResult,
    result_to_dict,
)
from repro.pipeline import ArtifactStore, PipelineRunner
from repro.server.coalesce import RequestCoalescer
from repro.server.jobs import Job, JobQueue
from repro.server.schemas import (
    DesignRequest,
    SuiteRequest,
    parse_job_request,
)

__all__ = ["SynthesisService", "DESIGN_REPORT_FORMAT"]

DESIGN_REPORT_FORMAT = "repro-server-design-v1"


class SynthesisService:
    """Content-addressed synthesis jobs over the execution platform.

    Parameters
    ----------
    engine_jobs:
        Process-pool width of each job's engine (1 = serial in the
        worker thread).
    cache_dir:
        Whole-result/stage cache directory; ``None`` disables every
        disk layer (in-flight coalescing still works).
    workers:
        Concurrent job slots in the queue.
    """

    def __init__(
        self,
        engine_jobs: int = 1,
        cache_dir: Optional[str] = None,
        workers: int = 2,
    ) -> None:
        self.engine = ExecutionEngine(jobs=engine_jobs, cache=cache_dir)
        self.coalescer = RequestCoalescer()
        self.queue = JobQueue(self._execute, workers=workers)
        self._stats_lock = threading.Lock()
        self._cached_hits = 0
        self._solves = 0
        # Solver-level observability: every MILP/assignment solve in
        # this process tallies here (job threads and the serial path
        # alike; pool workers solve in children, which is precisely the
        # signal -- in-process solves are the coalescable ones).
        self._solve_observer = self._on_solve
        SOLVE_COUNTER.subscribe(self._solve_observer)

    def _on_solve(self, kind: str) -> None:
        with self._stats_lock:
            self._solves += 1

    def close(self, drain: bool = True) -> None:
        """Stop the queue (draining by default) and detach observers."""
        self.queue.shutdown(drain=drain)
        try:
            SOLVE_COUNTER.unsubscribe(self._solve_observer)
        except ValueError:  # pragma: no cover - already detached
            pass

    # -- admission ----------------------------------------------------

    def submit(self, payload: Any) -> Tuple[Job, str]:
        """Parse, content-address, coalesce and (if new) enqueue.

        Returns ``(job, disposition)`` where disposition extends the
        coalescer's vocabulary with ``"cached"``: the request was new to
        the registry but its result was already in the whole-result
        cache, so the job completed synchronously without queueing.

        Raises :class:`~repro.server.schemas.RequestError` on malformed
        payloads -- nothing invalid is ever admitted.
        """
        request = parse_job_request(payload)
        fingerprint = request.fingerprint()
        job, disposition = self.coalescer.admit(
            fingerprint,
            lambda: self.queue.new_job(request, fingerprint),
        )
        if disposition != "new":
            return job, disposition
        warm = self._warm_lookup(request)
        if warm is not None:
            with self._stats_lock:
                self._cached_hits += 1
            job.mark_done(warm)
            return job, "cached"
        self.queue.submit(job)
        return job, "new"

    def _warm_lookup(self, request) -> Optional[Dict[str, Any]]:
        """A completed result from the persistent caches, or ``None``.

        Design points are whole-result cached under their task key, so
        a restarted daemon still answers repeat requests without
        queueing them. Suite reports are not whole-result cached (their
        stage artifacts are), so suites always queue -- their warm path
        is fast, not instant.
        """
        if not isinstance(request, DesignRequest):
            return None
        if self.engine.cache is None:
            return None
        trace, config, window = self._design_inputs(request)
        key = task_key(
            trace_fingerprint(trace), config, window, request.app
        )
        cached = self.engine.cache.get(key)
        if cached is None:
            return None
        return self._design_payload(request, trace, config, window, cached)

    # -- execution ----------------------------------------------------

    def _execute(self, job: Job) -> Dict[str, Any]:
        request = job.request
        if isinstance(request, DesignRequest):
            return self._run_design(job, request)
        if isinstance(request, SuiteRequest):
            return self._run_suite(job, request)
        raise TypeError(
            f"no executor for request type {type(request).__name__}"
        )  # pragma: no cover - parse layer admits only known kinds

    def _job_runner(self) -> PipelineRunner:
        """A job-scoped stage runner persisting through the shared
        cache directory (separate :class:`ResultCache` instance, same
        accounting discipline as the suite runner's)."""
        disk = None
        if self.engine.cache is not None:
            disk = ResultCache(self.engine.cache.cache_dir)
        return PipelineRunner(
            store=ArtifactStore(disk=disk), memoize_bindings=True
        )

    @staticmethod
    def _design_inputs(request: DesignRequest):
        from repro.apps import default_full_crossbar_trace

        trace = default_full_crossbar_trace(request.app)
        config = SynthesisConfig(
            window_size=request.window,
            overlap_threshold=request.threshold,
            max_targets_per_bus=request.maxtb,
            backend=request.backend,
        )
        return trace, config, request.resolved_window()

    def _design_payload(
        self,
        request: DesignRequest,
        trace,
        config: SynthesisConfig,
        window: int,
        result: SynthesisResult,
    ) -> Dict[str, Any]:
        runner = PipelineRunner()  # fingerprint derivation only
        return {
            "format": DESIGN_REPORT_FORMAT,
            "app": request.app,
            "window": window,
            "design_fingerprint": runner.design_fingerprint(
                trace_fingerprint(trace), config, window
            ),
            "result": result_to_dict(result),
            "result_format": RESULT_FORMAT,
        }

    def _run_design(
        self, job: Job, request: DesignRequest
    ) -> Dict[str, Any]:
        trace, config, window = self._design_inputs(request)
        runner = self._job_runner()
        runner.counters.subscribe(job.record_progress)
        try:
            report = CrossbarSynthesizer(
                config, pipeline=runner
            ).design_from_trace(trace, window)
        finally:
            runner.counters.unsubscribe(job.record_progress)
        result = SynthesisResult.from_report(report)
        if self.engine.cache is not None:
            key = task_key(
                trace_fingerprint(trace), config, window, request.app
            )
            self.engine.cache.put(key, result)
        return self._design_payload(request, trace, config, window, result)

    def _run_suite(self, job: Job, request: SuiteRequest) -> Dict[str, Any]:
        from repro.scenarios import (
            ScenarioSuiteRunner,
            build_suite,
            suite_from_dict,
        )

        if request.suite:
            suite = build_suite(request.suite)
        else:
            suite = suite_from_dict(request.suite_dict())
        runner = ScenarioSuiteRunner(
            engine=self.engine.scoped(),
            config=SynthesisConfig(
                overlap_threshold=request.threshold,
                max_targets_per_bus=request.maxtb,
            ),
            policy=request.policy,
            min_weight=request.min_weight,
            replay_latency=request.replay_latency,
            pipeline=self._job_runner(),
        )
        runner.pipeline.counters.subscribe(job.record_progress)
        try:
            report = runner.run(suite)
        finally:
            runner.pipeline.counters.unsubscribe(job.record_progress)
        return report.to_dict()

    # -- observability ------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload (see docs/http-api.md)."""
        jobs = self.queue.jobs()
        states: Dict[str, int] = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        payload: Dict[str, Any] = {
            "queue": {
                "depth": self.queue.depth(),
                "active": self.queue.active(),
                "jobs": states,
            },
            "coalescing": self.coalescer.stats(),
            "solves": {
                "in_process": self._solves,
                "feasibility": SOLVE_COUNTER.feasibility,
                "binding": SOLVE_COUNTER.binding,
            },
        }
        with self._stats_lock:
            payload["coalescing"]["cached_hits"] = self._cached_hits
        cache = self.engine.cache
        if cache is not None:
            usage = cache.usage()
            payload["cache"] = {
                "dir": str(cache.cache_dir),
                "entries": usage.entries,
                "total_bytes": usage.total_bytes,
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "stores": cache.stats.stores,
            }
        else:
            payload["cache"] = None
        return payload
