"""Asynchronous job model and worker queue of the synthesis daemon.

A :class:`Job` is one admitted unit of work: it carries the parsed
request, its content fingerprint, a
queued/running/done/failed/cancelled state machine, live per-stage
progress (fed by the pipeline's
:class:`~repro.pipeline.store.StageCounters` observers) and -- once
terminal -- either the JSON result or the error message. Jobs are
plain shared-state objects: HTTP handler threads read them while a
worker thread mutates them, so every mutation happens under the job's
lock, :meth:`Job.status` returns a consistent copy, and the terminal
transitions are one-way -- a late writer (a worker racing a
cancellation, a timed-out job finally finishing) finds the state
already terminal and its mark becomes a no-op instead of a resurrection.

The :class:`JobQueue` runs jobs on a small pool of daemon worker
threads fed from a FIFO. Shutdown is graceful by default: the queue
stops accepting work, sends one sentinel per worker, and joins them --
every job admitted before shutdown still runs to a terminal state, so
clients polling an in-flight job never see it vanish. An optional
per-job wall-clock timeout bounds each execution: an overrunning job is
marked failed and *abandoned* (its runner thread is left to finish into
the no-op guard) so one pathological request cannot pin a worker slot
forever from the clients' point of view.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.server.schemas import JobRequest

__all__ = ["Job", "JobQueue"]

_STATES = ("queued", "running", "done", "failed", "cancelled")


class Job:
    """One admitted synthesis job (see module docstring)."""

    def __init__(self, job_id: str, request: JobRequest, fingerprint: str):
        self.id = job_id
        self.request = request
        self.fingerprint = fingerprint
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.coalesced = 0
        """How many later identical requests shared this job."""
        self.trace_id: Optional[str] = None
        """Root trace id of this job's span tree (``None`` until the
        job starts executing, or forever when tracing is disarmed)."""
        self.progress: Dict[str, Dict[str, int]] = {}
        """Live per-stage tallies: ``{stage: {computed, memo_hit, disk_hit}}``."""
        self._lock = threading.Lock()
        self._terminal = threading.Event()

    # -- worker-side transitions --------------------------------------
    #
    # Every transition returns whether it took effect: terminal states
    # (done/failed/cancelled) are absorbing, so a worker that lost a
    # race -- against a cancellation, or against its own timeout -- gets
    # ``False`` back and the job's terminal answer stays what the first
    # writer made it.

    def mark_running(self) -> bool:
        with self._lock:
            if self.state != "queued":
                return False
            self.state = "running"
            self.started_at = time.time()
            return True

    def mark_done(self, result: Dict[str, Any]) -> bool:
        with self._lock:
            if self.state in ("done", "failed", "cancelled"):
                return False
            self.state = "done"
            self.result = result
            self.finished_at = time.time()
        self._terminal.set()
        return True

    def mark_failed(self, error: str) -> bool:
        with self._lock:
            if self.state in ("done", "failed", "cancelled"):
                return False
            self.state = "failed"
            self.error = error
            self.finished_at = time.time()
        self._terminal.set()
        return True

    def cancel(self) -> bool:
        """Cancel the job if it has not started; ``True`` on success.

        Only queued jobs are cancellable: a running solve holds real
        resources the thread model cannot safely reclaim mid-flight,
        and a terminal job already has its answer. A cancelled job is
        terminal (pollers wake immediately) and the worker that later
        dequeues it skips execution via the :meth:`mark_running` guard.
        """
        with self._lock:
            if self.state != "queued":
                return False
            self.state = "cancelled"
            self.error = "cancelled before execution"
            self.finished_at = time.time()
        self._terminal.set()
        return True

    @property
    def is_terminal(self) -> bool:
        return self._terminal.is_set()

    def record_progress(self, kind: str, stage: str) -> None:
        """Tally one stage event (wired to ``StageCounters.subscribe``)."""
        with self._lock:
            row = self.progress.setdefault(
                stage,
                {"computed": 0, "memo_hit": 0, "disk_hit": 0, "shm_hit": 0},
            )
            row[kind] = row.get(kind, 0) + 1

    # -- reader side --------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; ``True`` if it is."""
        return self._terminal.wait(timeout)

    def status(self, include_result: bool = True) -> Dict[str, Any]:
        """A consistent JSON-ready snapshot of this job."""
        with self._lock:
            payload: Dict[str, Any] = {
                "job": self.id,
                "kind": self.request.kind,
                "description": self.request.describe(),
                "fingerprint": self.fingerprint,
                "state": self.state,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "coalesced": self.coalesced,
                "trace_id": self.trace_id,
                "progress": {
                    stage: dict(row) for stage, row in self.progress.items()
                },
            }
            if self.state in ("failed", "cancelled"):
                payload["error"] = self.error
            if include_result and self.state == "done":
                payload["result"] = self.result
            return payload


class JobQueue:
    """FIFO of jobs drained by ``workers`` daemon threads.

    Parameters
    ----------
    execute:
        ``execute(job)`` runs one job to completion and returns its JSON
        result; exceptions mark the job failed. Provided by
        :class:`~repro.server.service.SynthesisService`.
    workers:
        Concurrent solver slots. Each running job may additionally use
        the execution engine's process pool internally, so this stays
        small by default.
    job_timeout:
        Optional wall-clock bound in seconds on one job's execution.
        An overrunning job is marked failed (clients polling it get a
        terminal answer) and abandoned: its runner thread keeps going
        as a daemon and its eventual completion is absorbed by the
        terminal-state guard. ``None`` (the default) disables the bound.
    """

    def __init__(
        self,
        execute: Callable[[Job], Dict[str, Any]],
        workers: int = 2,
        job_timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be > 0 or None")
        self._execute = execute
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._accepting = True
        self._active = 0
        self.job_timeout = job_timeout
        self._timeouts = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def new_job(self, request: JobRequest, fingerprint: str) -> Job:
        """Create and index a job record (not yet enqueued)."""
        job = Job(f"job-{next(self._ids)}", request, fingerprint)
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
        return job

    def submit(self, job: Job) -> None:
        """Enqueue ``job`` for execution."""
        with self._lock:
            if not self._accepting:
                raise RuntimeError("job queue is shutting down")
        self._queue.put(job)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return self._queue.qsize()

    def active(self) -> int:
        """Jobs currently executing on a worker."""
        with self._lock:
            return self._active

    def timeouts(self) -> int:
        """Jobs failed by the per-job wall-clock timeout so far."""
        with self._lock:
            return self._timeouts

    def evict_terminal(self, ttl: float) -> List[Job]:
        """Forget terminal jobs older than ``ttl`` seconds.

        The registry otherwise grows one :class:`Job` (request, result
        payload and all) per distinct fingerprint for the daemon's
        lifetime. Eviction drops jobs whose terminal timestamp is more
        than ``ttl`` seconds old; a polling client that comes back
        later gets a 404 and simply resubmits (the whole-result cache
        still answers warmly). Returns the evicted jobs, so the caller
        can expire their fingerprints from the coalescing registry too.
        """
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        cutoff = time.time() - ttl
        with self._lock:
            evicted = [
                job
                for job_id in self._order
                if (job := self._jobs[job_id]).is_terminal
                and job.finished_at is not None
                and job.finished_at <= cutoff
            ]
            if not evicted:
                return []
            gone = {job.id for job in evicted}
            for job_id in gone:
                del self._jobs[job_id]
            self._order = [j for j in self._order if j not in gone]
            return evicted

    def _run_job(self, job: Job) -> None:
        """Execute one job to a terminal mark (both timeout modes)."""
        try:
            result = self._execute(job)
        except Exception as error:  # job isolation: one bad job
            job.mark_failed(f"{type(error).__name__}: {error}")
        else:
            job.mark_done(result)

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            if not job.mark_running():  # cancelled while queued
                self._queue.task_done()
                continue
            with self._lock:
                self._active += 1
            try:
                if self.job_timeout is None:
                    self._run_job(job)
                else:
                    runner = threading.Thread(
                        target=self._run_job,
                        args=(job,),
                        name=f"{threading.current_thread().name}-run",
                        daemon=True,
                    )
                    runner.start()
                    runner.join(self.job_timeout)
                    if runner.is_alive():
                        # Abandon the runner: it finishes into the
                        # terminal-state guard; the client's answer is
                        # this failure.
                        if job.mark_failed(
                            f"timed out after {self.job_timeout:g}s"
                        ):
                            with self._lock:
                                self._timeouts += 1
            finally:
                with self._lock:
                    self._active -= 1
                self._queue.task_done()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the workers.

        With ``drain=True`` (the default), already-queued jobs run to
        completion before the workers exit; with ``drain=False`` the
        queue is emptied first and the abandoned jobs are marked failed
        so no poller waits forever on a job that will never run.
        """
        with self._lock:
            if not self._accepting:
                return
            self._accepting = False
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not None:
                    job.mark_failed("server shut down before execution")
                self._queue.task_done()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
