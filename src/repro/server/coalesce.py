"""Request coalescing by content address.

The daemon content-addresses every job request (see
:mod:`repro.server.schemas`); the :class:`RequestCoalescer` is the
registry that turns identical addresses into shared work:

* two **in-flight** requests with the same fingerprint share one job --
  the second ``POST`` returns the first job's id (disposition
  ``"coalesced"``) and both clients poll the same solve;
* a fingerprint that already **finished** is served from the registry
  (disposition ``"finished"``) without re-queueing -- the artifact and
  whole-result stores below make that hit cheap across restarts too;
* a **failed** job is evicted on admission, so resubmitting after a
  failure retries instead of replaying the stored error forever.

All transitions happen under one lock; the check-then-register race two
concurrent submitters would otherwise hit (both miss, both enqueue) is
exactly what this type exists to close.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

from repro.server.jobs import Job

__all__ = ["RequestCoalescer"]


class RequestCoalescer:
    """Fingerprint -> job registry with single-flight admission."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self.submitted = 0
        self.executed = 0
        self.coalesced = 0
        self.finished_hits = 0

    def admit(
        self, fingerprint: str, create: Callable[[], Job]
    ) -> Tuple[Job, str]:
        """Admit a request, sharing any live job for ``fingerprint``.

        Returns ``(job, disposition)`` with disposition one of:

        ``"new"``
            No usable job existed; ``create()`` was called (under the
            lock, so exactly once per fingerprint) and its job is now
            the registry entry. The caller must enqueue it.
        ``"coalesced"``
            A queued or running job for the same fingerprint exists;
            that job is returned and nothing is enqueued.
        ``"finished"``
            The fingerprint already completed successfully; the done
            job (result attached) is returned without re-queueing.

        Failed registry entries are evicted here so the new request
        retries from scratch.
        """
        with self._lock:
            self.submitted += 1
            existing = self._jobs.get(fingerprint)
            if existing is not None:
                if existing.state in ("queued", "running"):
                    self.coalesced += 1
                    existing.coalesced += 1
                    return existing, "coalesced"
                if existing.state == "done":
                    self.finished_hits += 1
                    return existing, "finished"
                # failed: fall through and retry with a fresh job
                del self._jobs[fingerprint]
            job = create()
            self._jobs[fingerprint] = job
            self.executed += 1
            return job, "new"

    def lookup(self, fingerprint: str) -> Optional[Job]:
        """The registry's job for ``fingerprint``, if any."""
        with self._lock:
            return self._jobs.get(fingerprint)

    def stats(self) -> Dict[str, int]:
        """Counters for the ``/v1/stats`` endpoint (one consistent read)."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "executed": self.executed,
                "coalesced": self.coalesced,
                "finished_hits": self.finished_hits,
            }
