"""Request coalescing by content address.

The daemon content-addresses every job request (see
:mod:`repro.server.schemas`); the :class:`RequestCoalescer` is the
registry that turns identical addresses into shared work:

* two **in-flight** requests with the same fingerprint share one job --
  the second ``POST`` returns the first job's id (disposition
  ``"coalesced"``) and both clients poll the same solve;
* a fingerprint that already **finished** is served from the registry
  (disposition ``"finished"``) without re-queueing -- the artifact and
  whole-result stores below make that hit cheap across restarts too;
* a **failed** (or cancelled) job is evicted on admission, so
  resubmitting after a failure retries instead of replaying the stored
  error forever;
* **finished** entries expire after a TTL (when one is configured), so
  a long-lived daemon's registry does not grow one entry -- result
  payload included -- per distinct fingerprint forever. An expired
  fingerprint falls back to the whole-result cache, which still
  answers warmly.

All transitions happen under one lock; the check-then-register race two
concurrent submitters would otherwise hit (both miss, both enqueue) is
exactly what this type exists to close.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.server.jobs import Job

__all__ = ["RequestCoalescer"]


class RequestCoalescer:
    """Fingerprint -> job registry with single-flight admission.

    Parameters
    ----------
    finished_ttl:
        Seconds a finished (done) entry stays answerable from the
        registry; ``None`` (the default) keeps entries forever. Live
        (queued/running) entries never expire -- expiring one would
        break single-flight admission mid-solve.
    """

    def __init__(self, finished_ttl: Optional[float] = None) -> None:
        if finished_ttl is not None and finished_ttl <= 0:
            raise ValueError("finished_ttl must be > 0 or None")
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self.finished_ttl = finished_ttl
        self.submitted = 0
        self.executed = 0
        self.coalesced = 0
        self.finished_hits = 0
        self.ttl_evictions = 0

    def _expire_locked(self) -> None:
        """Evict finished entries past their TTL (caller holds the lock)."""
        if self.finished_ttl is None:
            return
        cutoff = time.time() - self.finished_ttl
        expired = [
            fingerprint
            for fingerprint, job in self._jobs.items()
            if job.is_terminal
            and job.finished_at is not None
            and job.finished_at <= cutoff
        ]
        for fingerprint in expired:
            del self._jobs[fingerprint]
        self.ttl_evictions += len(expired)

    def admit(
        self, fingerprint: str, create: Callable[[], Job]
    ) -> Tuple[Job, str]:
        """Admit a request, sharing any live job for ``fingerprint``.

        Returns ``(job, disposition)`` with disposition one of:

        ``"new"``
            No usable job existed; ``create()`` was called (under the
            lock, so exactly once per fingerprint) and its job is now
            the registry entry. The caller must enqueue it.
        ``"coalesced"``
            A queued or running job for the same fingerprint exists;
            that job is returned and nothing is enqueued.
        ``"finished"``
            The fingerprint already completed successfully; the done
            job (result attached) is returned without re-queueing.

        Failed/cancelled registry entries are evicted here so the new
        request retries from scratch, and expired finished entries are
        dropped first (see ``finished_ttl``).

        ``create()`` runs under the lock (exactly once per fingerprint)
        and may raise -- e.g. the service shedding load on a full queue
        -- in which case *nothing* is registered and the error
        propagates to the caller.
        """
        with self._lock:
            self._expire_locked()
            self.submitted += 1
            existing = self._jobs.get(fingerprint)
            if existing is not None:
                if existing.state in ("queued", "running"):
                    self.coalesced += 1
                    existing.coalesced += 1
                    return existing, "coalesced"
                if existing.state == "done":
                    self.finished_hits += 1
                    return existing, "finished"
                # failed/cancelled: fall through, retry with a fresh job
                del self._jobs[fingerprint]
            job = create()
            self._jobs[fingerprint] = job
            self.executed += 1
            return job, "new"

    def lookup(self, fingerprint: str) -> Optional[Job]:
        """The registry's job for ``fingerprint``, if any."""
        with self._lock:
            self._expire_locked()
            return self._jobs.get(fingerprint)

    def forget(self, fingerprint: str) -> None:
        """Drop the registry entry for ``fingerprint``, if any (used
        when the job registry evicts a job by TTL, so the coalescer
        never answers with a job the registry no longer knows). Counts
        toward ``ttl_evictions``: its only caller is TTL-driven."""
        with self._lock:
            if self._jobs.pop(fingerprint, None) is not None:
                self.ttl_evictions += 1

    def stats(self) -> Dict[str, int]:
        """Counters for the ``/v1/stats`` endpoint (one consistent read)."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "executed": self.executed,
                "coalesced": self.coalesced,
                "finished_hits": self.finished_hits,
                "ttl_evictions": self.ttl_evictions,
                "registry_size": len(self._jobs),
            }
