"""Request/response schemas of the synthesis service.

Every job the ``repro serve`` daemon accepts is described by a small
frozen request record parsed (and fully validated) from the client's
JSON body by :func:`parse_job_request`. Validation failures raise
:class:`RequestError`, which the HTTP layer maps to a ``400`` response
with a JSON error body -- a malformed request must never reach the job
queue.

Each request kind knows its own **content address**
(:meth:`JobRequest.fingerprint`): a SHA-256 over the canonical JSON
encoding of the request's semantic fields (defaults filled in, key
order fixed). Two requests that would perform identical work therefore
carry identical fingerprints however their JSON was spelled, which is
the property the coalescer (:mod:`repro.server.coalesce`) keys on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.errors import ReproError
from repro.exec.fingerprint import canonical_json, sha256_hex

__all__ = [
    "REQUEST_SCHEMA_VERSION",
    "RequestError",
    "JobRequest",
    "DesignRequest",
    "SuiteRequest",
    "parse_job_request",
]

REQUEST_SCHEMA_VERSION = 1
"""Bump to invalidate request fingerprints on encoding changes."""

_POLICIES = ("union", "worst-case", "weighted")
_BACKENDS = ("assignment", "milp")


class RequestError(ReproError):
    """A malformed or semantically invalid job request.

    Carries machine-readable ``details`` the HTTP layer returns in the
    400 response body next to the human-readable message.
    """

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.details: Dict[str, Any] = dict(details)


def _require_mapping(payload: Any) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise RequestError(
            f"job request must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _get_str(payload: Mapping[str, Any], key: str, default=None) -> Any:
    value = payload.get(key, default)
    if value is default:
        return default
    if not isinstance(value, str):
        raise RequestError(f"field {key!r} must be a string", field=key)
    return value


def _get_number(payload, key: str, default, *, lo=None, hi=None):
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"field {key!r} must be a number", field=key)
    if lo is not None and value < lo:
        raise RequestError(f"field {key!r} must be >= {lo}", field=key)
    if hi is not None and value > hi:
        raise RequestError(f"field {key!r} must be <= {hi}", field=key)
    return value


def _get_bool(payload, key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise RequestError(f"field {key!r} must be a boolean", field=key)
    return value


def _get_choice(payload, key: str, default: str, choices) -> str:
    value = _get_str(payload, key, default)
    if value not in choices:
        raise RequestError(
            f"field {key!r} must be one of {', '.join(choices)}",
            field=key,
            choices=list(choices),
        )
    return value


def _reject_unknown(payload: Mapping[str, Any], known) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise RequestError(
            f"unknown request field(s): {', '.join(unknown)}",
            unknown_fields=unknown,
        )


@dataclass(frozen=True)
class JobRequest:
    """Common surface of every parsed job request."""

    kind: str = field(init=False, default="")

    def canonical(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        """The semantic fields, defaults resolved, for fingerprinting."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Content address of this request (see module docstring)."""
        payload = {
            "schema": REQUEST_SCHEMA_VERSION,
            "kind": self.kind,
            "request": self.canonical(),
        }
        return sha256_hex(canonical_json(payload))

    def describe(self) -> str:  # pragma: no cover - abstract
        """One-line human-readable request summary."""
        raise NotImplementedError


@dataclass(frozen=True)
class DesignRequest(JobRequest):
    """Synthesize one application's crossbar (the ``repro design`` flow).

    ``window=None`` resolves to the application's recommended window at
    execution time -- the *resolved* window enters the fingerprint, so a
    request spelling the default explicitly coalesces with one omitting
    it.
    """

    app: str = ""
    window: Optional[int] = None
    threshold: float = 0.3
    maxtb: Optional[int] = 4
    backend: str = "assignment"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", "design")

    def resolved_window(self) -> int:
        from repro.apps import build_application

        if self.window is not None:
            return int(self.window)
        return build_application(self.app).default_window

    def canonical(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "window": self.resolved_window(),
            "threshold": self.threshold,
            "maxtb": self.maxtb,
            "backend": self.backend,
        }

    def describe(self) -> str:
        return (
            f"design {self.app} (window {self.window or 'default'}, "
            f"threshold {self.threshold:g}, backend {self.backend})"
        )


@dataclass(frozen=True)
class SuiteRequest(JobRequest):
    """Run a scenario suite end to end (the ``repro scenarios run`` flow).

    ``suite`` names a built-in suite; server-side file paths are
    deliberately *not* accepted (a network client must not browse the
    server's filesystem) -- custom suites travel inline as the
    ``suite_payload`` JSON object produced by ``repro scenarios export``.
    """

    suite: str = ""
    suite_payload: Optional[str] = None
    """Inline suite as *canonical JSON text* -- hashable, and already
    key-order-normalized for fingerprinting."""
    policy: str = "union"
    min_weight: float = 0.5
    threshold: float = 0.3
    maxtb: Optional[int] = 4
    replay_latency: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", "suite")

    def suite_dict(self) -> Optional[Dict[str, Any]]:
        """The inline suite payload as a plain dict, or ``None``."""
        if self.suite_payload is None:
            return None
        return json.loads(self.suite_payload)

    def canonical(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "suite_payload": self.suite_dict(),
            "policy": self.policy,
            "min_weight": self.min_weight,
            "threshold": self.threshold,
            "maxtb": self.maxtb,
            "replay_latency": self.replay_latency,
        }

    def describe(self) -> str:
        name = self.suite or "(inline suite)"
        return (
            f"suite {name} (policy {self.policy}, "
            f"replay_latency {self.replay_latency})"
        )


def _parse_design(payload: Mapping[str, Any]) -> DesignRequest:
    from repro.apps import APPLICATIONS

    _reject_unknown(
        payload, ("kind", "app", "window", "threshold", "maxtb", "backend")
    )
    app = _get_str(payload, "app")
    if not app:
        raise RequestError("design request needs an 'app' field", field="app")
    if app not in APPLICATIONS:
        raise RequestError(
            f"unknown application {app!r}",
            field="app",
            choices=sorted(APPLICATIONS),
        )
    window = _get_number(payload, "window", None, lo=1)
    threshold = _get_number(payload, "threshold", 0.3, lo=0.0, hi=0.5)
    maxtb = _get_number(payload, "maxtb", 4, lo=0)
    return DesignRequest(
        app=app,
        window=int(window) if window is not None else None,
        threshold=float(threshold),
        maxtb=int(maxtb) or None,
        backend=_get_choice(payload, "backend", "assignment", _BACKENDS),
    )


def _parse_suite(payload: Mapping[str, Any]) -> SuiteRequest:
    from repro.scenarios import SUITES

    _reject_unknown(
        payload,
        ("kind", "suite", "suite_payload", "policy", "min_weight",
         "threshold", "maxtb", "replay_latency"),
    )
    suite = _get_str(payload, "suite", "")
    suite_payload = payload.get("suite_payload")
    if bool(suite) == (suite_payload is not None):
        raise RequestError(
            "suite request needs exactly one of 'suite' (a built-in name) "
            "or 'suite_payload' (an exported suite object)",
            field="suite",
        )
    if suite and suite not in SUITES:
        raise RequestError(
            f"unknown suite {suite!r}; server-side paths are not accepted, "
            f"send custom suites inline via 'suite_payload'",
            field="suite",
            choices=sorted(SUITES),
        )
    frozen_payload: Optional[str] = None
    if suite_payload is not None:
        if not isinstance(suite_payload, Mapping):
            raise RequestError(
                "field 'suite_payload' must be a suite JSON object",
                field="suite_payload",
            )
        from repro.scenarios import suite_from_dict

        try:
            suite_from_dict(suite_payload)  # full structural validation
        except ReproError as error:
            raise RequestError(
                f"invalid inline suite: {error}", field="suite_payload"
            ) from error
        # Freeze through canonical JSON so the request stays hashable
        # and its fingerprint is independent of client key order.
        frozen_payload = canonical_json(dict(suite_payload))
    threshold = _get_number(payload, "threshold", 0.3, lo=0.0, hi=0.5)
    maxtb = _get_number(payload, "maxtb", 4, lo=0)
    return SuiteRequest(
        suite=suite,
        suite_payload=frozen_payload,
        policy=_get_choice(payload, "policy", "union", _POLICIES),
        min_weight=float(
            _get_number(payload, "min_weight", 0.5, lo=0.0, hi=1.0)
        ),
        threshold=float(threshold),
        maxtb=int(maxtb) or None,
        replay_latency=_get_bool(payload, "replay_latency", False),
    )


_PARSERS = {
    "design": _parse_design,
    "suite": _parse_suite,
}


def parse_job_request(payload: Any) -> JobRequest:
    """Parse and validate a client JSON body into a job request.

    Raises :class:`RequestError` (HTTP 400) on anything malformed:
    non-object bodies, unknown ``kind``, unknown fields, out-of-range
    values, unknown applications/suites, structurally invalid inline
    suites.
    """
    payload = _require_mapping(payload)
    kind = _get_str(payload, "kind")
    if not kind:
        raise RequestError(
            "job request needs a 'kind' field",
            field="kind",
            choices=sorted(_PARSERS),
        )
    parser = _PARSERS.get(kind)
    if parser is None:
        raise RequestError(
            f"unknown job kind {kind!r}",
            field="kind",
            choices=sorted(_PARSERS),
        )
    return parser(payload)
