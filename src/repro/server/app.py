"""HTTP surface of the synthesis daemon.

A thin, dependency-free translation layer: stdlib
:class:`~http.server.ThreadingHTTPServer` handlers parse the URL and
body, delegate to :class:`~repro.server.service.SynthesisService`, and
encode the answer as JSON. No synthesis logic lives here -- the service
is fully testable without sockets, and the HTTP tests only need to
cover the translation.

Endpoints (all JSON; see docs/http-api.md for schemas and examples)::

    POST   /v1/jobs         submit a job          -> 202 {job, disposition}
    GET    /v1/jobs         list known jobs       -> 200 {jobs: [...]}
    GET    /v1/jobs/<id>    job status + result   -> 200 {state, ...}
    DELETE /v1/jobs/<id>    cancel a queued job   -> 200 {state: cancelled}
    GET    /v1/stats        daemon observability  -> 200 {...}
    GET    /v1/health       liveness + degradation-> 200 {status, ...}

``GET /v1/jobs/<id>?wait=<seconds>`` long-polls: the response is sent
as soon as the job turns terminal, or with its current state once the
timeout elapses. The parameter must be a non-negative finite number;
values above 60 s are clamped to 60 (the response says so), negative
or non-numeric values are a 400.

Errors are JSON bodies too -- ``{"error": {"message": ..., ...}}`` --
with 400 for malformed requests, 404 for unknown paths/jobs, 405 for
bad methods, 409 for cancelling a job that already started or
finished, 503 with a ``Retry-After`` header when the queue sheds load,
and 503 once shutdown began.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.server.schemas import RequestError
from repro.server.service import ServiceOverloaded, SynthesisService

__all__ = ["SynthesisServer", "serve"]

_MAX_BODY_BYTES = 8 * 1024 * 1024  # inline suites are small; 8 MiB is ample
_MAX_WAIT_SECONDS = 60.0


class _Handler(BaseHTTPRequestHandler):
    """One request; the service hangs off the server object."""

    server: "SynthesisServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, **details) -> None:
        error: Dict[str, Any] = {"message": message}
        if details:
            error.update(details)
        self._send_json(status, {"error": error})

    def _read_json_body(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise RequestError("missing or invalid Content-Length header")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise RequestError(
                f"request body must be 0..{_MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"request body is not valid JSON: {error}")

    # -- routing ------------------------------------------------------

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parts = urlsplit(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        return parts.path.rstrip("/") or "/", query

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        path, _query = self._route()
        if path != "/v1/jobs":
            self._send_error_json(404, f"no such resource: {path}")
            return
        if self.server.draining.is_set():
            self._send_error_json(503, "server is shutting down")
            return
        try:
            payload = self._read_json_body()
            job, disposition = self.server.service.submit(payload)
        except RequestError as error:
            self._send_error_json(400, str(error), **error.details)
            return
        except ServiceOverloaded as error:
            # Load shedding, not failure: tell the client when to retry.
            body = json.dumps(
                {"error": {"message": str(error), "queued": error.depth}},
                sort_keys=True,
            ).encode("utf-8")
            self.send_response(503)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Retry-After", f"{error.retry_after:g}")
            self.end_headers()
            self.wfile.write(body)
            return
        except RuntimeError:
            # The queue closed between the drain check and the submit.
            self._send_error_json(503, "server is shutting down")
            return
        self._send_json(
            202,
            {
                "job": job.id,
                "fingerprint": job.fingerprint,
                "disposition": disposition,
                "state": job.status(include_result=False)["state"],
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        path, query = self._route()
        if path == "/v1/health":
            self._send_json(200, self.server.service.health())
            return
        if path == "/v1/stats":
            self._send_json(200, self.server.service.stats())
            return
        if path == "/v1/jobs":
            jobs = [
                job.status(include_result=False)
                for job in self.server.service.queue.jobs()
            ]
            self._send_json(200, {"jobs": jobs})
            return
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            job = self.server.service.queue.get(job_id)
            if job is None:
                self._send_error_json(404, f"no such job: {job_id}")
                return
            wait = query.get("wait")
            if wait is not None:
                try:
                    seconds = float(wait)
                except ValueError:
                    seconds = math.nan
                # Reject, don't silently repair: a negative or NaN/inf
                # wait is a caller bug, and Event.wait must never see it.
                if not math.isfinite(seconds) or seconds < 0:
                    self._send_error_json(
                        400,
                        "query parameter 'wait' must be a non-negative "
                        f"number of seconds (max {_MAX_WAIT_SECONDS:g})",
                    )
                    return
                job.wait(min(seconds, _MAX_WAIT_SECONDS))
            self._send_json(200, job.status())
            return
        self._send_error_json(404, f"no such resource: {path}")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib handler naming
        path, _query = self._route()
        if not path.startswith("/v1/jobs/"):
            self._send_error_json(405, "method not allowed")
            return
        job_id = path[len("/v1/jobs/"):]
        cancelled = self.server.service.cancel(job_id)
        if cancelled is None:
            self._send_error_json(404, f"no such job: {job_id}")
            return
        if not cancelled:
            job = self.server.service.queue.get(job_id)
            state = job.status(include_result=False)["state"] if job else "?"
            self._send_error_json(
                409,
                f"job {job_id} is {state}; only queued jobs are cancellable",
            )
            return
        job = self.server.service.queue.get(job_id)
        self._send_json(200, job.status(include_result=False))

    def do_PUT(self) -> None:  # noqa: N802 - stdlib handler naming
        self._send_error_json(405, "method not allowed")

    do_PATCH = do_PUT


class SynthesisServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server owning one service.

    ``start()`` serves on a background thread (tests and the CLI both
    use it); ``stop(drain=True)`` closes the listener, refuses new
    jobs, and drains the queue so in-flight jobs reach a terminal state
    before the call returns.
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        engine_jobs: int = 1,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        verbose: bool = False,
        job_timeout: Optional[float] = None,
        finished_ttl: Optional[float] = None,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = SynthesisService(
            engine_jobs=engine_jobs,
            cache_dir=cache_dir,
            workers=workers,
            job_timeout=job_timeout,
            finished_ttl=finished_ttl,
            max_queue_depth=max_queue_depth,
        )
        self.verbose = verbose
        self.draining = threading.Event()
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a background thread until :meth:`stop`."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve",
            daemon=True,
        )
        self._serve_thread.start()

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new jobs, then drain the queue."""
        self.draining.set()
        self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._serve_thread = None
        self.server_close()
        self.service.close(drain=drain)


def serve(
    host: str = "127.0.0.1",
    port: int = 8321,
    engine_jobs: int = 1,
    cache_dir: Optional[str] = None,
    workers: int = 2,
    verbose: bool = False,
    job_timeout: Optional[float] = None,
    finished_ttl: Optional[float] = None,
    max_queue_depth: Optional[int] = None,
) -> SynthesisServer:
    """Build and start a daemon; the caller owns ``stop()``."""
    server = SynthesisServer(
        host=host,
        port=port,
        engine_jobs=engine_jobs,
        cache_dir=cache_dir,
        workers=workers,
        verbose=verbose,
        job_timeout=job_timeout,
        finished_ttl=finished_ttl,
        max_queue_depth=max_queue_depth,
    )
    server.start()
    return server
