"""HTTP surface of the synthesis daemon.

A thin, dependency-free translation layer: stdlib
:class:`~http.server.ThreadingHTTPServer` handlers parse the URL and
body, delegate to :class:`~repro.server.service.SynthesisService`, and
encode the answer as JSON. No synthesis logic lives here -- the service
is fully testable without sockets, and the HTTP tests only need to
cover the translation.

Endpoints (all JSON unless noted; see docs/http-api.md)::

    POST   /v1/jobs             submit a job         -> 202 {job, disposition}
    GET    /v1/jobs             list known jobs      -> 200 {jobs: [...]}
    GET    /v1/jobs/<id>        job status + result  -> 200 {state, ...}
    GET    /v1/jobs/<id>/trace  job span tree        -> 200 {trace_id, spans}
    DELETE /v1/jobs/<id>        cancel a queued job  -> 200 {state: cancelled}
    GET    /v1/stats            daemon observability -> 200 {...}
    GET    /v1/health           liveness+degradation -> 200 {status, ...}
    GET    /metrics             Prometheus text      -> 200 (text/plain)

Every request is itself measured: per-endpoint latency histograms and
a method/endpoint/status counter feed the same registry ``/metrics``
renders, with URL paths collapsed to low-cardinality templates
(``/v1/jobs/<id>`` rather than each job id).

``GET /v1/jobs/<id>?wait=<seconds>`` long-polls: the response is sent
as soon as the job turns terminal, or with its current state once the
timeout elapses. The parameter must be a non-negative finite number;
values above 60 s are clamped to 60 (the response says so), negative
or non-numeric values are a 400.

Errors are JSON bodies too -- ``{"error": {"message": ..., ...}}`` --
with 400 for malformed requests, 404 for unknown paths/jobs, 405 for
bad methods, 409 for cancelling a job that already started or
finished, 503 with a ``Retry-After`` header when the queue sheds load,
and 503 once shutdown began.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs import metrics as _metrics
from repro.obs.jsonlog import JsonLogger
from repro.server.schemas import RequestError
from repro.server.service import ServiceOverloaded, SynthesisService

__all__ = ["SynthesisServer", "serve"]

_MAX_BODY_BYTES = 8 * 1024 * 1024  # inline suites are small; 8 MiB is ample
_MAX_WAIT_SECONDS = 60.0

_HTTP_REQUESTS = _metrics.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, endpoint template and status.",
    ("method", "endpoint", "status"),
)
_HTTP_SECONDS = _metrics.histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency by method and endpoint template.",
    ("method", "endpoint"),
)


def _endpoint_label(path: str) -> str:
    """Collapse a request path to a bounded endpoint template.

    Metrics labels must stay low-cardinality: every distinct label set
    is a live time series, so job ids (and arbitrary probe paths) are
    folded into templates instead of being recorded verbatim.
    """
    if path in ("/v1/jobs", "/v1/stats", "/v1/health", "/metrics"):
        return path
    if path.startswith("/v1/jobs/"):
        if path.endswith("/trace"):
            return "/v1/jobs/<id>/trace"
        return "/v1/jobs/<id>"
    return "other"


class _Handler(BaseHTTPRequestHandler):
    """One request; the service hangs off the server object."""

    server: "SynthesisServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(fmt, *args)

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        # Remembered so the dispatch wrapper can label the request
        # counter with the status actually sent.
        self._sent_status = code
        super().send_response(code, message)

    def _dispatch(self, method: str, handler) -> None:
        """Time one request and record it into the metrics registry.

        Long-poll waits (``?wait=``) count toward the latency histogram
        -- it measures handler occupancy, not just compute.
        """
        path, _ = self._route()
        endpoint = _endpoint_label(path)
        self._sent_status = 0
        began = time.perf_counter()
        try:
            handler()
        finally:
            elapsed = time.perf_counter() - began
            _HTTP_SECONDS.observe(elapsed, method=method, endpoint=endpoint)
            _HTTP_REQUESTS.inc(
                method=method,
                endpoint=endpoint,
                status=str(self._sent_status or 500),
            )
            log = self.server.service.log
            if log is not None:
                log.emit(
                    "http.request",
                    method=method,
                    endpoint=endpoint,
                    path=path,
                    status=self._sent_status or 500,
                    duration_s=round(elapsed, 6),
                )

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, body: str, content_type: str = "text/plain"
    ) -> None:
        raw = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _send_error_json(self, status: int, message: str, **details) -> None:
        error: Dict[str, Any] = {"message": message}
        if details:
            error.update(details)
        self._send_json(status, {"error": error})

    def _read_json_body(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise RequestError("missing or invalid Content-Length header")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise RequestError(
                f"request body must be 0..{_MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"request body is not valid JSON: {error}")

    # -- routing ------------------------------------------------------

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parts = urlsplit(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        return parts.path.rstrip("/") or "/", query

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        self._dispatch("POST", self._handle_post)

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        self._dispatch("GET", self._handle_get)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib handler naming
        self._dispatch("DELETE", self._handle_delete)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib handler naming
        self._dispatch("PUT", self._handle_other)

    do_PATCH = do_PUT

    def _handle_post(self) -> None:
        path, _query = self._route()
        if path != "/v1/jobs":
            self._send_error_json(404, f"no such resource: {path}")
            return
        if self.server.draining.is_set():
            self._send_error_json(503, "server is shutting down")
            return
        try:
            payload = self._read_json_body()
            job, disposition = self.server.service.submit(payload)
        except RequestError as error:
            self._send_error_json(400, str(error), **error.details)
            return
        except ServiceOverloaded as error:
            # Load shedding, not failure: tell the client when to retry.
            body = json.dumps(
                {"error": {"message": str(error), "queued": error.depth}},
                sort_keys=True,
            ).encode("utf-8")
            self.send_response(503)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Retry-After", f"{error.retry_after:g}")
            self.end_headers()
            self.wfile.write(body)
            return
        except RuntimeError:
            # The queue closed between the drain check and the submit.
            self._send_error_json(503, "server is shutting down")
            return
        self._send_json(
            202,
            {
                "job": job.id,
                "fingerprint": job.fingerprint,
                "disposition": disposition,
                "state": job.status(include_result=False)["state"],
            },
        )

    def _handle_get(self) -> None:
        path, query = self._route()
        if path == "/v1/health":
            self._send_json(200, self.server.service.health())
            return
        if path == "/v1/stats":
            self._send_json(200, self.server.service.stats())
            return
        if path == "/metrics":
            self._send_text(
                200,
                _metrics.render_prometheus(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/v1/jobs":
            jobs = [
                job.status(include_result=False)
                for job in self.server.service.queue.jobs()
            ]
            self._send_json(200, {"jobs": jobs})
            return
        if path.startswith("/v1/jobs/") and path.endswith("/trace"):
            job_id = path[len("/v1/jobs/"):-len("/trace")]
            trace = self.server.service.job_trace(job_id)
            if trace is None:
                self._send_error_json(404, f"no such job: {job_id}")
                return
            self._send_json(200, trace)
            return
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            job = self.server.service.queue.get(job_id)
            if job is None:
                self._send_error_json(404, f"no such job: {job_id}")
                return
            wait = query.get("wait")
            if wait is not None:
                try:
                    seconds = float(wait)
                except ValueError:
                    seconds = math.nan
                # Reject, don't silently repair: a negative or NaN/inf
                # wait is a caller bug, and Event.wait must never see it.
                if not math.isfinite(seconds) or seconds < 0:
                    self._send_error_json(
                        400,
                        "query parameter 'wait' must be a non-negative "
                        f"number of seconds (max {_MAX_WAIT_SECONDS:g})",
                    )
                    return
                job.wait(min(seconds, _MAX_WAIT_SECONDS))
            self._send_json(200, job.status())
            return
        self._send_error_json(404, f"no such resource: {path}")

    def _handle_delete(self) -> None:
        path, _query = self._route()
        if not path.startswith("/v1/jobs/"):
            self._send_error_json(405, "method not allowed")
            return
        job_id = path[len("/v1/jobs/"):]
        cancelled = self.server.service.cancel(job_id)
        if cancelled is None:
            self._send_error_json(404, f"no such job: {job_id}")
            return
        if not cancelled:
            job = self.server.service.queue.get(job_id)
            state = job.status(include_result=False)["state"] if job else "?"
            self._send_error_json(
                409,
                f"job {job_id} is {state}; only queued jobs are cancellable",
            )
            return
        job = self.server.service.queue.get(job_id)
        self._send_json(200, job.status(include_result=False))

    def _handle_other(self) -> None:
        self._send_error_json(405, "method not allowed")


class SynthesisServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server owning one service.

    ``start()`` serves on a background thread (tests and the CLI both
    use it); ``stop(drain=True)`` closes the listener, refuses new
    jobs, and drains the queue so in-flight jobs reach a terminal state
    before the call returns.
    """

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        engine_jobs: int = 1,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        verbose: bool = False,
        job_timeout: Optional[float] = None,
        finished_ttl: Optional[float] = None,
        max_queue_depth: Optional[int] = None,
        trace: bool = True,
        log_json: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = SynthesisService(
            engine_jobs=engine_jobs,
            cache_dir=cache_dir,
            workers=workers,
            job_timeout=job_timeout,
            finished_ttl=finished_ttl,
            max_queue_depth=max_queue_depth,
            trace=trace,
            log=JsonLogger() if log_json else None,
        )
        self.verbose = verbose
        self.draining = threading.Event()
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a background thread until :meth:`stop`."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve",
            daemon=True,
        )
        self._serve_thread.start()

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new jobs, then drain the queue."""
        self.draining.set()
        self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._serve_thread = None
        self.server_close()
        self.service.close(drain=drain)


def serve(
    host: str = "127.0.0.1",
    port: int = 8321,
    engine_jobs: int = 1,
    cache_dir: Optional[str] = None,
    workers: int = 2,
    verbose: bool = False,
    job_timeout: Optional[float] = None,
    finished_ttl: Optional[float] = None,
    max_queue_depth: Optional[int] = None,
    trace: bool = True,
    log_json: bool = False,
) -> SynthesisServer:
    """Build and start a daemon; the caller owns ``stop()``."""
    server = SynthesisServer(
        host=host,
        port=port,
        engine_jobs=engine_jobs,
        cache_dir=cache_dir,
        workers=workers,
        verbose=verbose,
        job_timeout=job_timeout,
        finished_ttl=finished_ttl,
        max_queue_depth=max_queue_depth,
        trace=trace,
        log_json=log_json,
    )
    server.start()
    return server
