"""Optimization model container and standard-form conversion.

A :class:`Model` owns variables and constraints and converts itself to the
dense matrix form consumed by the LP engines::

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lower <= x <= upper

Maximization is expressed by negating the objective at the call site (the
paper's formulations only minimize). Feasibility problems simply leave the
objective at zero, mirroring MILP1 in Section 6 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import ModelError
from repro.milp.expr import LinExpr, Number, Variable, VarType

__all__ = ["Sense", "Constraint", "StandardForm", "Model"]


class Sense(enum.Enum):
    """Constraint comparison sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in homogeneous form.

    Built by comparing a :class:`~repro.milp.expr.LinExpr` with a scalar or
    another expression; the right-hand side is folded into the expression's
    constant, so the stored form is always ``expr sense 0``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: Sense, name: str = "") -> None:
        self.expr = expr
        self.sense = sense
        self.name = name

    def violated_by(self, assignment: Dict[Variable, float], tol: float = 1e-6) -> bool:
        """Whether an assignment violates this constraint beyond ``tol``."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs > tol
        if self.sense is Sense.GE:
            return lhs < -tol
        return abs(lhs) > tol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" [{self.name}]" if self.name else ""
        return f"<Constraint{label} {self.expr!r} {self.sense.value} 0>"


@dataclass(frozen=True)
class StandardForm:
    """Dense matrices of a model, ready for an LP engine."""

    objective: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integer_mask: np.ndarray
    variables: Sequence[Variable]

    def check_point(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Whether ``x`` is a feasible *integral* point of this form.

        This is the gate every warm-start hint passes through before a
        solver is allowed to use it: hints are advisory, so a stale
        binding that violates the (possibly edited) constraints is
        simply rejected here rather than corrupting the solve.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != self.lower.shape:
            return False
        if (x < self.lower - tol).any() or (x > self.upper + tol).any():
            return False
        integral = x[self.integer_mask]
        if integral.size and np.abs(integral - np.round(integral)).max() > tol:
            return False
        if self.a_ub.size and (self.a_ub @ x > self.b_ub + tol).any():
            return False
        if self.a_eq.size and np.abs(self.a_eq @ x - self.b_eq).max() > tol:
            return False
        return True


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._constraints: List[Constraint] = []
        self._objective = LinExpr()

    # -- variables ------------------------------------------------------------

    def _new_var(self, name, lower, upper, vtype) -> Variable:
        if any(existing.name == name for existing in self._variables):
            raise ModelError(f"duplicate variable name {name!r}")
        var = Variable(name, lower, upper, vtype, index=len(self._variables))
        self._variables.append(var)
        return var

    def binary_var(self, name: str) -> Variable:
        """Add a 0/1 variable (paper Eq. 9 domain)."""
        return self._new_var(name, 0.0, 1.0, VarType.BINARY)

    def integer_var(
        self, name: str, lower: float = 0.0, upper: float = float("inf")
    ) -> Variable:
        """Add a general integer variable."""
        return self._new_var(name, lower, upper, VarType.INTEGER)

    def continuous_var(
        self, name: str, lower: float = 0.0, upper: float = float("inf")
    ) -> Variable:
        """Add a continuous variable."""
        return self._new_var(name, lower, upper, VarType.CONTINUOUS)

    @property
    def variables(self) -> List[Variable]:
        """All variables in column order."""
        return list(self._variables)

    @property
    def constraints(self) -> List[Constraint]:
        """All constraints in insertion order."""
        return list(self._constraints)

    # -- constraints and objective ---------------------------------------------

    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint built via expression comparison."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                f"Model.add expects a Constraint, got {type(constraint).__name__}"
            )
        for var in constraint.expr.terms:
            self._check_owned(var)
        if name:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def minimize(self, objective: Union[LinExpr, Variable, Number]) -> None:
        """Set the objective to minimize (replaces any previous one)."""
        if isinstance(objective, Variable):
            objective = objective.to_expr()
        elif isinstance(objective, (int, float)):
            objective = LinExpr(constant=objective)
        for var in objective.terms:
            self._check_owned(var)
        self._objective = objective

    @property
    def objective(self) -> LinExpr:
        """Current minimization objective (zero for feasibility problems)."""
        return self._objective

    def _check_owned(self, var: Variable) -> None:
        if var.index >= len(self._variables) or self._variables[var.index] is not var:
            raise ModelError(
                f"variable {var.name!r} does not belong to model {self.name!r}"
            )

    # -- conversion -------------------------------------------------------------

    def to_standard_form(
        self, bound_overrides: Optional[Dict[int, tuple]] = None
    ) -> StandardForm:
        """Convert to dense matrices.

        ``bound_overrides`` maps variable column indices to ``(lower,
        upper)`` pairs; the branch-and-bound solver uses it to tighten
        domains without mutating the model.
        """
        num_vars = len(self._variables)
        lower = np.array([var.lower for var in self._variables], dtype=float)
        upper = np.array([var.upper for var in self._variables], dtype=float)
        if bound_overrides:
            for index, (new_lower, new_upper) in bound_overrides.items():
                lower[index] = max(lower[index], new_lower)
                upper[index] = min(upper[index], new_upper)
        objective = np.zeros(num_vars)
        for var, coeff in self._objective.terms.items():
            objective[var.index] = coeff

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for constraint in self._constraints:
            row = np.zeros(num_vars)
            for var, coeff in constraint.expr.terms.items():
                row[var.index] = coeff
            rhs = -constraint.expr.constant
            if constraint.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif constraint.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        integer_mask = np.array(
            [var.is_integral for var in self._variables], dtype=bool
        )
        return StandardForm(
            objective=objective,
            a_ub=np.vstack(ub_rows) if ub_rows else np.zeros((0, num_vars)),
            b_ub=np.array(ub_rhs),
            a_eq=np.vstack(eq_rows) if eq_rows else np.zeros((0, num_vars)),
            b_eq=np.array(eq_rhs),
            lower=lower,
            upper=upper,
            integer_mask=integer_mask,
            variables=list(self._variables),
        )

    def check_assignment(
        self, assignment: Dict[Variable, float], tol: float = 1e-6
    ) -> List[Constraint]:
        """Return the constraints an assignment violates (audit helper)."""
        return [
            constraint
            for constraint in self._constraints
            if constraint.violated_by(assignment, tol)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Model {self.name!r}: {len(self._variables)} vars, "
            f"{len(self._constraints)} constraints>"
        )
