"""Pure-Python two-phase dense simplex LP solver.

This is the dependency-free LP engine behind the branch-and-bound MILP
solver (scipy's HiGHS can be swapped in for speed; results agree to
tolerance, which the test suite verifies on random instances).

The solver accepts the dense :class:`~repro.milp.model.StandardForm`
layout::

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lower <= x <= upper   (entries may be +/- inf)

and reduces it to equality form with non-negative variables by shifting /
splitting variables and adding slacks, then runs textbook two-phase
primal simplex with Bland's anti-cycling rule on a dense tableau.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SolverError

__all__ = ["LPStatus", "SimplexResult", "solve_lp_simplex"]

_TOL = 1e-9
_MAX_ITERATIONS = 50_000


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class SimplexResult:
    """LP solve outcome: status, point and objective value."""

    status: LPStatus
    x: Optional[np.ndarray]
    objective: Optional[float]


def solve_lp_simplex(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> SimplexResult:
    """Solve a bounded-variable LP with two-phase primal simplex."""
    c = np.asarray(c, dtype=float)
    num_original = c.size

    # --- reduce general bounds to y >= 0 --------------------------------
    # Each original variable x_j maps to an affine combination of one or
    # two non-negative columns; `recover` rebuilds x from y.
    columns = []  # per original var: (mode, payload)
    extra_ub_rows = []  # (col_index_in_y, rhs) for finite ranges
    offsets = np.zeros(num_original)
    signs = []
    y_count = 0
    neg_parts = {}
    for j in range(num_original):
        lo, hi = lower[j], upper[j]
        if lo > hi:
            return SimplexResult(LPStatus.INFEASIBLE, None, None)
        if np.isfinite(lo):
            offsets[j] = lo
            signs.append(1.0)
            columns.append(y_count)
            if np.isfinite(hi):
                extra_ub_rows.append((y_count, hi - lo))
            y_count += 1
        elif np.isfinite(hi):
            offsets[j] = hi
            signs.append(-1.0)
            columns.append(y_count)
            y_count += 1
        else:
            offsets[j] = 0.0
            signs.append(1.0)
            columns.append(y_count)
            neg_parts[j] = y_count + 1
            y_count += 2

    def expand(matrix: np.ndarray) -> np.ndarray:
        """Map a constraint matrix over x to the y variable space."""
        out = np.zeros((matrix.shape[0], y_count))
        for j in range(num_original):
            col = matrix[:, j]
            out[:, columns[j]] += col * signs[j]
            if j in neg_parts:
                out[:, neg_parts[j]] -= col
        return out

    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, num_original)
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, num_original)
    b_ub = np.asarray(b_ub, dtype=float) - a_ub @ offsets
    b_eq = np.asarray(b_eq, dtype=float) - a_eq @ offsets

    ub_matrix = expand(a_ub)
    eq_matrix = expand(a_eq)
    if extra_ub_rows:
        bound_matrix = np.zeros((len(extra_ub_rows), y_count))
        bound_rhs = np.zeros(len(extra_ub_rows))
        for row, (col, rhs) in enumerate(extra_ub_rows):
            bound_matrix[row, col] = 1.0
            bound_rhs[row] = rhs
        ub_matrix = np.vstack([ub_matrix, bound_matrix])
        b_ub = np.concatenate([b_ub, bound_rhs])

    cost = np.zeros(y_count)
    for j in range(num_original):
        cost[columns[j]] += c[j] * signs[j]
        if j in neg_parts:
            cost[neg_parts[j]] -= c[j]
    offset_cost = float(c @ offsets)

    # --- equality form with slacks --------------------------------------
    num_ub = ub_matrix.shape[0]
    num_eq = eq_matrix.shape[0]
    num_rows = num_ub + num_eq
    num_structural = y_count + num_ub  # y plus slack columns
    a_full = np.zeros((num_rows, num_structural))
    rhs = np.concatenate([b_ub, b_eq]) if num_rows else np.zeros(0)
    if num_ub:
        a_full[:num_ub, :y_count] = ub_matrix
        a_full[:num_ub, y_count : y_count + num_ub] = np.eye(num_ub)
    if num_eq:
        a_full[num_ub:, :y_count] = eq_matrix
    negative = rhs < 0
    a_full[negative] *= -1
    rhs = np.abs(rhs)

    y_solution = _two_phase(a_full, rhs, np.concatenate([cost, np.zeros(num_ub)]))
    if isinstance(y_solution, LPStatus):
        return SimplexResult(y_solution, None, None)

    x = offsets.copy()
    for j in range(num_original):
        x[j] += signs[j] * y_solution[columns[j]]
        if j in neg_parts:
            x[j] -= y_solution[neg_parts[j]]
    return SimplexResult(LPStatus.OPTIMAL, x, float(c @ x))


def _two_phase(a: np.ndarray, b: np.ndarray, cost: np.ndarray):
    """Two-phase simplex on ``min cost@z s.t. a z = b, z >= 0, b >= 0``.

    Returns the optimal ``z`` restricted to structural columns, or an
    :class:`LPStatus` on infeasibility/unboundedness.
    """
    num_rows, num_structural = a.shape
    if num_rows == 0:
        if (cost < -_TOL).any():
            return LPStatus.UNBOUNDED
        return np.zeros(num_structural)

    # Phase 1 tableau: structural columns, artificial basis, rhs.
    tableau = np.zeros((num_rows, num_structural + num_rows + 1))
    tableau[:, :num_structural] = a
    tableau[:, num_structural : num_structural + num_rows] = np.eye(num_rows)
    tableau[:, -1] = b
    basis = list(range(num_structural, num_structural + num_rows))

    phase1_cost = np.zeros(num_structural + num_rows)
    phase1_cost[num_structural:] = 1.0
    status = _optimize(tableau, basis, phase1_cost, allowed=num_structural + num_rows)
    if status is LPStatus.UNBOUNDED:  # pragma: no cover - phase 1 is bounded
        raise SolverError("phase-1 objective reported unbounded")
    phase1_value = sum(
        tableau[row, -1] for row, col in enumerate(basis) if col >= num_structural
    )
    if phase1_value > 1e-7:
        return LPStatus.INFEASIBLE

    _evict_artificials(tableau, basis, num_structural)

    phase2_cost = np.concatenate([cost, np.full(num_rows, 0.0)])
    status = _optimize(tableau, basis, phase2_cost, allowed=num_structural)
    if status is LPStatus.UNBOUNDED:
        return LPStatus.UNBOUNDED

    z = np.zeros(num_structural)
    for row, col in enumerate(basis):
        if col < num_structural:
            z[col] = tableau[row, -1]
    return z


def _optimize(tableau, basis, cost, allowed) -> Optional[LPStatus]:
    """Run simplex iterations in place with Bland's rule.

    ``allowed`` bounds the columns eligible to enter the basis (used to
    exclude artificial columns in phase 2).
    """
    num_rows = tableau.shape[0]
    for _ in range(_MAX_ITERATIONS):
        reduced = cost.copy()
        for row, col in enumerate(basis):
            if cost[col]:
                reduced -= cost[col] * tableau[row, :-1]
        entering = -1
        for col in range(allowed):
            if reduced[col] < -1e-9:
                entering = col
                break
        if entering < 0:
            return None
        ratios = []
        for row in range(num_rows):
            coef = tableau[row, entering]
            if coef > _TOL:
                ratios.append((tableau[row, -1] / coef, basis[row], row))
        if not ratios:
            return LPStatus.UNBOUNDED
        _, _, pivot_row = min(ratios)
        _pivot(tableau, basis, pivot_row, entering)
    raise SolverError("simplex iteration limit exceeded")


def _pivot(tableau, basis, row, col) -> None:
    tableau[row] /= tableau[row, col]
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, col]) > 1e-12:
            tableau[other] -= tableau[other, col] * tableau[row]
    basis[row] = col


def _evict_artificials(tableau, basis, num_structural) -> None:
    """Pivot basic artificials (at value zero) out of the basis."""
    for row, col in enumerate(basis):
        if col < num_structural:
            continue
        pivot_col = -1
        for candidate in range(num_structural):
            if abs(tableau[row, candidate]) > 1e-7:
                pivot_col = candidate
                break
        if pivot_col >= 0:
            _pivot(tableau, basis, row, pivot_col)
        # else: the row is linearly dependent; the artificial stays basic
        # at zero, contributing nothing to the solution.
