"""MILP solution and status objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.milp.expr import Variable

__all__ = ["SolveStatus", "Solution"]


class SolveStatus(enum.Enum):
    """Outcome of a MILP solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped early with an incumbent (node limit)
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node-limit"  # stopped early without an incumbent


@dataclass
class Solution:
    """Result of :func:`repro.milp.branch_bound.solve_milp`.

    Attributes
    ----------
    status:
        Solve outcome; values are meaningful only for ``OPTIMAL`` and
        ``FEASIBLE``.
    objective:
        Objective value of the returned point.
    values:
        Mapping from variable to its value (integers are exact).
    nodes:
        Number of branch-and-bound nodes explored.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[Variable, float] = field(default_factory=dict)
    nodes: int = 0

    @property
    def is_feasible(self) -> bool:
        """Whether a usable assignment is available."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value(self, var: Variable, default: float = 0.0) -> float:
        """Value of ``var`` or ``default`` when absent."""
        return self.values.get(var, default)
