"""MILP solution and status objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.milp.expr import Variable

__all__ = ["SolveStatus", "Solution", "solution_from_vector"]


class SolveStatus(enum.Enum):
    """Outcome of a MILP solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped early with an incumbent (node/time limit)
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node-limit"  # stopped early without an incumbent
    TIME_LIMIT = "time-limit"  # deadline expired without an incumbent


@dataclass
class Solution:
    """Result of :func:`repro.milp.branch_bound.solve_milp`.

    Attributes
    ----------
    status:
        Solve outcome; values are meaningful only for ``OPTIMAL`` and
        ``FEASIBLE``.
    objective:
        Objective value of the returned point.
    values:
        Mapping from variable to its value (integers are exact).
    nodes:
        Number of branch-and-bound nodes explored.
    timed_out:
        Whether a wall-clock deadline (``BranchBoundOptions.time_limit``)
        expired before the search completed. A timed-out solution may
        still be ``FEASIBLE`` -- the best incumbent found so far -- but
        carries no optimality guarantee.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict[Variable, float] = field(default_factory=dict)
    nodes: int = 0
    timed_out: bool = False

    @property
    def is_feasible(self) -> bool:
        """Whether a usable assignment is available."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value(self, var: Variable, default: float = 0.0) -> float:
        """Value of ``var`` or ``default`` when absent."""
        return self.values.get(var, default)


def solution_from_vector(
    status: SolveStatus,
    x,
    objective: Optional[float],
    form,
    nodes: int,
    timed_out: bool = False,
) -> Solution:
    """Build a :class:`Solution` from a raw variable vector.

    ``form`` is the model's :class:`~repro.milp.model.StandardForm`;
    integral variables are rounded to exact integers (every backend
    returns them within tolerance of integrality). With ``x`` ``None``
    the solution carries only the status -- infeasible/unbounded/limit
    outcomes.
    """
    if x is None:
        return Solution(status, nodes=nodes, timed_out=timed_out)
    values: Dict[Variable, float] = {}
    for var, value in zip(form.variables, x):
        if var.is_integral:
            values[var] = float(round(value))
        else:
            values[var] = float(value)
    return Solution(
        status,
        objective=float(objective),
        values=values,
        nodes=nodes,
        timed_out=timed_out,
    )
