"""Branch-and-bound MILP solver.

Classic LP-relaxation branch and bound with:

* best-first node selection (by relaxation bound, FIFO among ties),
* most-fractional branching,
* incumbent-based pruning with absolute gap tolerance,
* optional *feasibility mode* (stop at the first integral solution),
  matching the paper's MILP1, which has no objective function,
* pluggable LP engine (built-in simplex or scipy HiGHS).

The solver is exact; node and iteration limits exist only as safety
rails and are reported through the solution status when hit. A
wall-clock deadline (``time_limit``) is the graceful-degradation rail:
when it expires the solver returns the best incumbent found so far
flagged ``timed_out`` instead of running unboundedly -- and with no
deadline set, the search path (node order, pruning, branching) is
bit-for-bit identical to a solver without the feature, a property the
equivalence gate in ``tests/resilience`` enforces.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.milp.model import Model
from repro.milp.simplex import LPStatus, SimplexResult, solve_lp_simplex
from repro.milp.solution import Solution, SolveStatus
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.resilience import maybe_slow_solver

__all__ = ["BranchBoundOptions", "solve_milp"]

LPEngine = Callable[..., SimplexResult]

_INT_TOL = 1e-6

# Bound at import: deadline tests replace this module's ``time`` with a
# fake monotonic clock, and LP accounting must keep working (and keep
# measuring real time) underneath them.
_perf_counter = time.perf_counter

# Solver observability: accumulated locally during the search and
# recorded ONCE per solve -- never per node, whose count is the one
# thing that must stay cheap. The LP-time histogram is what makes the
# ROADMAP's HiGHS-vs-simplex comparison measurable.
_SOLVER_NODES = _metrics.counter(
    "repro_solver_nodes_total",
    "Branch-and-bound nodes explored across all solves.",
)
_SOLVER_INCUMBENTS = _metrics.counter(
    "repro_solver_incumbents_total",
    "Incumbent (best integer solution) updates across all solves.",
)
_SOLVER_LP_SECONDS = _metrics.histogram(
    "repro_solver_lp_seconds",
    "Total LP-relaxation wall-clock seconds per MILP solve.",
)


@dataclass(frozen=True)
class BranchBoundOptions:
    """Tuning knobs for :func:`solve_milp`.

    Attributes
    ----------
    lp_engine:
        ``"scipy"`` (default, HiGHS) or ``"simplex"`` (pure Python).
    node_limit:
        Maximum number of explored nodes before giving up.
    feasibility_only:
        Stop at the first integer-feasible solution; used for the paper's
        MILP1 (Eq. 10), which performs a pure feasibility check.
    absolute_gap:
        Prune nodes whose bound is within this of the incumbent.
    time_limit:
        Wall-clock deadline in seconds (``None`` disables, the
        default). When it expires mid-search the solver returns
        gracefully: the best incumbent so far as a ``FEASIBLE``
        solution flagged ``timed_out``, or a bare ``TIME_LIMIT``
        status when no incumbent exists yet. The deadline is checked
        per node, so one LP relaxation may overrun it; it bounds
        tail latency, not individual pivots.
    """

    lp_engine: str = "scipy"
    node_limit: int = 200_000
    feasibility_only: bool = False
    absolute_gap: float = 1e-6
    time_limit: Optional[float] = None

    def resolve_engine(self) -> LPEngine:
        """Return the LP relaxation solver callable."""
        if self.lp_engine == "scipy":
            from repro.milp.scipy_backend import solve_lp_scipy

            return solve_lp_scipy
        if self.lp_engine == "simplex":
            return solve_lp_simplex
        raise SolverError(f"unknown LP engine {self.lp_engine!r}")


@dataclass(order=True)
class _Node:
    bound: float
    order: int
    overrides: Dict[int, Tuple[float, float]] = field(compare=False)


def solve_milp(model: Model, options: Optional[BranchBoundOptions] = None) -> Solution:
    """Solve ``model`` to optimality (or first feasible point) by B&B."""
    options = options or BranchBoundOptions()
    accounting = {"lp_s": 0.0, "incumbents": 0}
    with _tracing.span(
        "solver.milp",
        engine=options.lp_engine,
        feasibility_only=options.feasibility_only,
    ) as span_:
        solution = _solve_impl(model, options, accounting)
        span_.set_attr(
            nodes=solution.nodes,
            status=getattr(solution.status, "name", str(solution.status)),
            incumbents=accounting["incumbents"],
            lp_ms=round(accounting["lp_s"] * 1e3, 3),
        )
    _SOLVER_NODES.inc(solution.nodes)
    _SOLVER_LP_SECONDS.observe(accounting["lp_s"])
    if accounting["incumbents"]:
        _SOLVER_INCUMBENTS.inc(accounting["incumbents"])
    return solution


def _solve_impl(
    model: Model, options: BranchBoundOptions, accounting: Dict[str, Any]
) -> Solution:
    engine = options.resolve_engine()
    deadline = (
        time.monotonic() + options.time_limit
        if options.time_limit is not None
        else None
    )
    form = model.to_standard_form()
    integer_indices = np.nonzero(form.integer_mask)[0]

    def relax(overrides: Dict[int, Tuple[float, float]]) -> SimplexResult:
        sub = model.to_standard_form(bound_overrides=overrides)
        begin = _perf_counter()
        result = engine(
            sub.objective, sub.a_ub, sub.b_ub, sub.a_eq, sub.b_eq,
            sub.lower, sub.upper,
        )
        accounting["lp_s"] += _perf_counter() - begin
        return result

    root = relax({})
    if root.status is LPStatus.INFEASIBLE:
        return Solution(SolveStatus.INFEASIBLE, nodes=1)
    if root.status is LPStatus.UNBOUNDED:
        # With all integers bounded this still means the continuous part
        # is unbounded, hence the MILP is unbounded or infeasible; report
        # unbounded as linprog does.
        return Solution(SolveStatus.UNBOUNDED, nodes=1)

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    heap: list[_Node] = [_Node(root.objective, 0, {})]
    lp_cache: Dict[int, SimplexResult] = {0: root}
    nodes_explored = 0
    next_order = 1

    while heap:
        node = heapq.heappop(heap)
        nodes_explored += 1
        # Injection point ``solver.slow`` (keyed by node ordinal):
        # stretches node latency so deadline tests fire deterministically
        # without depending on problem size. No-op without a FaultPlan.
        maybe_slow_solver(str(nodes_explored))
        if nodes_explored > options.node_limit:
            status = (
                SolveStatus.FEASIBLE if incumbent_x is not None
                else SolveStatus.NODE_LIMIT
            )
            return _finish(status, incumbent_x, incumbent_obj, form, nodes_explored)
        if deadline is not None and time.monotonic() >= deadline:
            status = (
                SolveStatus.FEASIBLE if incumbent_x is not None
                else SolveStatus.TIME_LIMIT
            )
            return _finish(
                status, incumbent_x, incumbent_obj, form, nodes_explored,
                timed_out=True,
            )
        if node.bound >= incumbent_obj - options.absolute_gap:
            continue
        relaxation = lp_cache.pop(node.order, None) or relax(node.overrides)
        if relaxation.status is not LPStatus.OPTIMAL:
            continue
        if relaxation.objective >= incumbent_obj - options.absolute_gap:
            continue
        x = relaxation.x
        fractional = _most_fractional(x, integer_indices)
        if fractional is None:
            incumbent_obj = relaxation.objective
            incumbent_x = x
            accounting["incumbents"] += 1
            if options.feasibility_only:
                return _finish(
                    SolveStatus.OPTIMAL, incumbent_x, incumbent_obj, form,
                    nodes_explored,
                )
            continue
        index, value = fractional
        floor_val = math.floor(value + _INT_TOL)
        for new_bounds in (
            (form.lower[index], float(floor_val)),
            (float(floor_val + 1), form.upper[index]),
        ):
            if new_bounds[0] > new_bounds[1]:
                continue
            overrides = dict(node.overrides)
            existing = overrides.get(index, (form.lower[index], form.upper[index]))
            merged = (max(existing[0], new_bounds[0]), min(existing[1], new_bounds[1]))
            if merged[0] > merged[1]:
                continue
            overrides[index] = merged
            child = relax(overrides)
            if child.status is not LPStatus.OPTIMAL:
                continue
            if child.objective >= incumbent_obj - options.absolute_gap:
                continue
            lp_cache[next_order] = child
            heapq.heappush(heap, _Node(child.objective, next_order, overrides))
            next_order += 1

    if incumbent_x is None:
        return Solution(SolveStatus.INFEASIBLE, nodes=nodes_explored)
    return _finish(
        SolveStatus.OPTIMAL, incumbent_x, incumbent_obj, form, nodes_explored
    )


def _most_fractional(
    x: np.ndarray, integer_indices: np.ndarray
) -> Optional[Tuple[int, float]]:
    """Pick the integer variable farthest from integrality, if any."""
    best_index = -1
    best_distance = _INT_TOL
    for index in integer_indices:
        value = x[index]
        distance = abs(value - round(value))
        if distance > best_distance:
            best_distance = distance
            best_index = int(index)
    if best_index < 0:
        return None
    return best_index, float(x[best_index])


def _finish(status, x, objective, form, nodes, timed_out: bool = False) -> Solution:
    if x is None:
        return Solution(status, nodes=nodes, timed_out=timed_out)
    values = {}
    for var, value in zip(form.variables, x):
        if var.is_integral:
            values[var] = float(round(value))
        else:
            values[var] = float(value)
    return Solution(
        status,
        objective=float(objective),
        values=values,
        nodes=nodes,
        timed_out=timed_out,
    )
