"""Branch-and-bound MILP solver and the MILP backend dispatch.

:func:`solve_milp` is the single entry point for every MILP in the
platform; which engine actually runs is a :class:`BranchBoundOptions`
knob (or the ``REPRO_MILP_BACKEND`` environment variable):

``reference``
    The pure-Python branch and bound implemented in this module --
    classic LP-relaxation search with best-first node selection (by
    relaxation bound, FIFO among ties), most-fractional branching,
    incumbent-based pruning with absolute gap tolerance, and an
    optional *feasibility mode* (stop at the first integral solution)
    matching the paper's MILP1, which has no objective function. This
    is the correctness oracle the other backends are gated against.
``highs``
    :mod:`repro.milp.highs_backend` -- the whole model handed to
    HiGHS native branch and bound via ``scipy.optimize.milp``.
``portfolio``
    :mod:`repro.milp.portfolio` -- reference and HiGHS raced in
    parallel processes, first proven answer wins.

All backends are exact, so they agree on feasibility verdicts and
optimal objective values; they need *not* agree on which optimal point
they return when the optimum is degenerate. Callers that must be
byte-identical across backends (reports, artifacts) re-derive a
canonical solution from the objective value -- see
:mod:`repro.core.binding`.

The reference solver is exact; node and iteration limits exist only as
safety rails and are reported through the solution status when hit. A
wall-clock deadline (``time_limit``) is the graceful-degradation rail:
when it expires the solver returns the best incumbent found so far
flagged ``timed_out`` instead of running unboundedly -- and with no
deadline set, the search path (node order, pruning, branching) is
bit-for-bit identical to a solver without the feature, a property the
equivalence gate in ``tests/resilience`` enforces.

Warm starts: ``solve_milp`` accepts an optional ``warm_values`` hint (a
variable -> value mapping, typically rebuilt from a cached binding).
Hints are *advisory*: each backend validates the hint against the
current model (:meth:`~repro.milp.model.StandardForm.check_point`) and
silently ignores anything stale or infeasible. A valid hint seeds the
reference solver's incumbent (pruning the tree above it) and bounds the
HiGHS solve through an objective cutoff; in feasibility mode it short-
circuits the solve outright.
"""

from __future__ import annotations

import heapq
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.milp.expr import Variable
from repro.milp.model import Model, StandardForm
from repro.milp.simplex import LPStatus, SimplexResult, solve_lp_simplex
from repro.milp.solution import Solution, SolveStatus, solution_from_vector
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.resilience import maybe_slow_solver

__all__ = [
    "MILP_BACKENDS",
    "BranchBoundOptions",
    "solve_milp",
    "resolve_default_backend",
]

LPEngine = Callable[..., SimplexResult]

MILP_BACKENDS = ("reference", "highs", "portfolio")

_BACKEND_ENV = "REPRO_MILP_BACKEND"

_INT_TOL = 1e-6

# Bound at import: deadline tests replace this module's ``time`` with a
# fake monotonic clock, and LP accounting must keep working (and keep
# measuring real time) underneath them.
_perf_counter = time.perf_counter

# Solver observability: accumulated locally during the search and
# recorded ONCE per solve -- never per node, whose count is the one
# thing that must stay cheap. The LP-time histogram is what makes the
# ROADMAP's HiGHS-vs-simplex comparison measurable; its ``backend``
# label is what makes the portfolio race observable. Node counts stay
# unlabelled: the warm-start benchmark diffs the single family total
# across solves, and every backend reports into it.
_SOLVER_NODES = _metrics.counter(
    "repro_solver_nodes_total",
    "Branch-and-bound nodes explored across all solves.",
)
_SOLVER_INCUMBENTS = _metrics.counter(
    "repro_solver_incumbents_total",
    "Incumbent (best integer solution) updates across all solves.",
)
_SOLVER_LP_SECONDS = _metrics.histogram(
    "repro_solver_lp_seconds",
    "Total LP-relaxation wall-clock seconds per MILP solve.",
    ("backend",),
)


def resolve_default_backend() -> str:
    """The MILP backend used when options name none.

    Read from ``REPRO_MILP_BACKEND`` at solve time (not import time, so
    tests and CI matrix steps can flip it per process); defaults to the
    pure-Python reference solver.
    """
    backend = os.environ.get(_BACKEND_ENV, "").strip() or "reference"
    if backend not in MILP_BACKENDS:
        raise SolverError(
            f"unknown MILP backend {backend!r} (from ${_BACKEND_ENV}); "
            f"expected one of {MILP_BACKENDS}"
        )
    return backend


@dataclass(frozen=True)
class BranchBoundOptions:
    """Tuning knobs for :func:`solve_milp`.

    Attributes
    ----------
    lp_engine:
        ``"scipy"`` (default, HiGHS) or ``"simplex"`` (pure Python) --
        the *node relaxation* engine of the reference solver. Ignored
        by the ``highs`` backend, which never solves relaxations here.
    backend:
        ``"reference"``, ``"highs"``, ``"portfolio"``, or ``None`` to
        resolve ``REPRO_MILP_BACKEND`` at solve time (defaulting to
        ``"reference"``).
    node_limit:
        Maximum number of explored nodes before giving up.
    feasibility_only:
        Stop at the first integer-feasible solution; used for the paper's
        MILP1 (Eq. 10), which performs a pure feasibility check.
    absolute_gap:
        Prune nodes whose bound is within this of the incumbent.
    time_limit:
        Wall-clock deadline in seconds (``None`` disables, the
        default). When it expires mid-search the solver returns
        gracefully: the best incumbent so far as a ``FEASIBLE``
        solution flagged ``timed_out``, or a bare ``TIME_LIMIT``
        status when no incumbent exists yet. The deadline is checked
        per node, so one LP relaxation may overrun it; it bounds
        tail latency, not individual pivots.
    """

    lp_engine: str = "scipy"
    node_limit: int = 200_000
    feasibility_only: bool = False
    absolute_gap: float = 1e-6
    time_limit: Optional[float] = None
    backend: Optional[str] = None

    def resolve_backend(self) -> str:
        """The effective MILP backend for this solve."""
        if self.backend is None:
            return resolve_default_backend()
        if self.backend not in MILP_BACKENDS:
            raise SolverError(
                f"unknown MILP backend {self.backend!r}; "
                f"expected one of {MILP_BACKENDS}"
            )
        return self.backend

    def resolve_engine(self) -> LPEngine:
        """Return the LP relaxation solver callable."""
        if self.lp_engine == "scipy":
            from repro.milp.scipy_backend import solve_lp_scipy

            return solve_lp_scipy
        if self.lp_engine == "simplex":
            return solve_lp_simplex
        raise SolverError(f"unknown LP engine {self.lp_engine!r}")

    def resolve_node_solver(
        self, form: StandardForm
    ) -> Callable[[np.ndarray, np.ndarray], SimplexResult]:
        """A bounds-only relaxation solver specialized to ``form``.

        Branch and bound re-solves one model with only variable bounds
        changing between nodes, so the per-model conversion (objective,
        constraint matrices) is hoisted here and each node passes just
        its ``(lower, upper)`` arrays.
        """
        if self.lp_engine == "scipy":
            from repro.milp.scipy_backend import make_lp_solver

            return make_lp_solver(form)
        engine = self.resolve_engine()

        def solve(lower: np.ndarray, upper: np.ndarray) -> SimplexResult:
            return engine(
                form.objective, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
                lower, upper,
            )

        return solve


@dataclass(order=True)
class _Node:
    bound: float
    order: int
    overrides: Dict[int, Tuple[float, float]] = field(compare=False)


def solve_milp(
    model: Model,
    options: Optional[BranchBoundOptions] = None,
    warm_values: Optional[Dict[Variable, float]] = None,
) -> Solution:
    """Solve ``model`` to optimality (or first feasible point).

    Dispatches to the backend named by ``options`` (see module
    docstring); ``warm_values`` is an advisory warm-start hint.
    """
    options = options or BranchBoundOptions()
    backend = options.resolve_backend()
    accounting = {"lp_s": 0.0, "incumbents": 0}
    with _tracing.span(
        "solver.milp",
        engine=options.lp_engine,
        backend=backend,
        feasibility_only=options.feasibility_only,
    ) as span_:
        if backend == "highs":
            from repro.milp.highs_backend import solve_milp_highs

            begin = _perf_counter()
            solution = solve_milp_highs(model, options, warm_values)
            accounting["lp_s"] = _perf_counter() - begin
        elif backend == "portfolio":
            from repro.milp.portfolio import race_portfolio

            begin = _perf_counter()
            solution = race_portfolio(model, options, warm_values)
            accounting["lp_s"] = _perf_counter() - begin
        else:
            solution = _solve_impl(model, options, accounting, warm_values)
        span_.set_attr(
            nodes=solution.nodes,
            status=getattr(solution.status, "name", str(solution.status)),
            incumbents=accounting["incumbents"],
            lp_ms=round(accounting["lp_s"] * 1e3, 3),
        )
    _SOLVER_NODES.inc(solution.nodes)
    _SOLVER_LP_SECONDS.observe(accounting["lp_s"], backend=backend)
    if accounting["incumbents"]:
        _SOLVER_INCUMBENTS.inc(accounting["incumbents"])
    return solution


def _solve_impl(
    model: Model,
    options: BranchBoundOptions,
    accounting: Dict[str, Any],
    warm_values: Optional[Dict[Variable, float]] = None,
) -> Solution:
    deadline = (
        time.monotonic() + options.time_limit
        if options.time_limit is not None
        else None
    )
    form = model.to_standard_form()
    integer_indices = np.nonzero(form.integer_mask)[0]
    node_solver = options.resolve_node_solver(form)

    # Warm start: a validated hint becomes the initial incumbent, so
    # every node whose relaxation bound is no better is pruned without
    # branching. With the hint rejected (stale binding after a suite
    # edit) the search below is bit-for-bit the cold search.
    from repro.milp.highs_backend import warm_vector

    warm_x = warm_vector(form, warm_values)
    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    if warm_x is not None:
        incumbent_x = warm_x
        incumbent_obj = float(form.objective @ warm_x)
        if options.feasibility_only:
            return _finish(SolveStatus.OPTIMAL, incumbent_x, incumbent_obj, form, 0)

    def relax(overrides: Dict[int, Tuple[float, float]]) -> SimplexResult:
        lower = form.lower.copy()
        upper = form.upper.copy()
        for index, (new_lower, new_upper) in overrides.items():
            lower[index] = max(lower[index], new_lower)
            upper[index] = min(upper[index], new_upper)
        begin = _perf_counter()
        result = node_solver(lower, upper)
        accounting["lp_s"] += _perf_counter() - begin
        return result

    root = relax({})
    if root.status is LPStatus.INFEASIBLE:
        return Solution(SolveStatus.INFEASIBLE, nodes=1)
    if root.status is LPStatus.UNBOUNDED:
        # With all integers bounded this still means the continuous part
        # is unbounded, hence the MILP is unbounded or infeasible; report
        # unbounded as linprog does.
        return Solution(SolveStatus.UNBOUNDED, nodes=1)

    heap: list[_Node] = [_Node(root.objective, 0, {})]
    lp_cache: Dict[int, SimplexResult] = {0: root}
    nodes_explored = 0
    next_order = 1

    while heap:
        node = heapq.heappop(heap)
        nodes_explored += 1
        # Injection point ``solver.slow`` (keyed by node ordinal):
        # stretches node latency so deadline tests fire deterministically
        # without depending on problem size. No-op without a FaultPlan.
        maybe_slow_solver(str(nodes_explored))
        if nodes_explored > options.node_limit:
            status = (
                SolveStatus.FEASIBLE if incumbent_x is not None
                else SolveStatus.NODE_LIMIT
            )
            return _finish(status, incumbent_x, incumbent_obj, form, nodes_explored)
        if deadline is not None and time.monotonic() >= deadline:
            status = (
                SolveStatus.FEASIBLE if incumbent_x is not None
                else SolveStatus.TIME_LIMIT
            )
            return _finish(
                status, incumbent_x, incumbent_obj, form, nodes_explored,
                timed_out=True,
            )
        if node.bound >= incumbent_obj - options.absolute_gap:
            continue
        relaxation = lp_cache.pop(node.order, None) or relax(node.overrides)
        if relaxation.status is not LPStatus.OPTIMAL:
            continue
        if relaxation.objective >= incumbent_obj - options.absolute_gap:
            continue
        x = relaxation.x
        fractional = _most_fractional(x, integer_indices)
        if fractional is None:
            incumbent_obj = relaxation.objective
            incumbent_x = x
            accounting["incumbents"] += 1
            if options.feasibility_only:
                return _finish(
                    SolveStatus.OPTIMAL, incumbent_x, incumbent_obj, form,
                    nodes_explored,
                )
            continue
        index, value = fractional
        floor_val = math.floor(value + _INT_TOL)
        for new_bounds in (
            (form.lower[index], float(floor_val)),
            (float(floor_val + 1), form.upper[index]),
        ):
            if new_bounds[0] > new_bounds[1]:
                continue
            overrides = dict(node.overrides)
            existing = overrides.get(index, (form.lower[index], form.upper[index]))
            merged = (max(existing[0], new_bounds[0]), min(existing[1], new_bounds[1]))
            if merged[0] > merged[1]:
                continue
            overrides[index] = merged
            child = relax(overrides)
            if child.status is not LPStatus.OPTIMAL:
                continue
            if child.objective >= incumbent_obj - options.absolute_gap:
                continue
            lp_cache[next_order] = child
            heapq.heappush(heap, _Node(child.objective, next_order, overrides))
            next_order += 1

    if incumbent_x is None:
        return Solution(SolveStatus.INFEASIBLE, nodes=nodes_explored)
    return _finish(
        SolveStatus.OPTIMAL, incumbent_x, incumbent_obj, form, nodes_explored
    )


def _most_fractional(
    x: np.ndarray, integer_indices: np.ndarray
) -> Optional[Tuple[int, float]]:
    """Pick the integer variable farthest from integrality, if any."""
    best_index = -1
    best_distance = _INT_TOL
    for index in integer_indices:
        value = x[index]
        distance = abs(value - round(value))
        if distance > best_distance:
            best_distance = distance
            best_index = int(index)
    if best_index < 0:
        return None
    return best_index, float(x[best_index])


def _finish(status, x, objective, form, nodes, timed_out: bool = False) -> Solution:
    return solution_from_vector(status, x, objective, form, nodes, timed_out)
