"""Decision variables and linear expressions.

The modeling layer follows the conventions of mainstream MILP APIs:
variables combine into :class:`LinExpr` objects through ``+``, ``-`` and
scalar ``*``; comparing an expression with ``<=``, ``>=`` or ``==``
produces a :class:`~repro.milp.model.Constraint` ready to be added to a
:class:`~repro.milp.model.Model`.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Union

from repro.errors import ModelError

__all__ = ["VarType", "Variable", "LinExpr"]

Number = Union[int, float]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A decision variable owned by a :class:`~repro.milp.model.Model`.

    Construct variables through ``Model.binary_var`` and friends rather
    than directly; the model assigns the column ``index``.
    """

    __slots__ = ("name", "lower", "upper", "vtype", "index")

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        vtype: VarType,
        index: int,
    ) -> None:
        if not name:
            raise ModelError("variable name must be non-empty")
        if math.isnan(lower) or math.isnan(upper):
            raise ModelError(f"variable {name!r} has NaN bounds")
        if lower > upper:
            raise ModelError(
                f"variable {name!r} has empty domain [{lower}, {upper}]"
            )
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.vtype = vtype
        self.index = index

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take integer values."""
        return self.vtype in (VarType.INTEGER, VarType.BINARY)

    # -- expression building -------------------------------------------------

    def to_expr(self) -> "LinExpr":
        """This variable as a single-term linear expression."""
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other): return self.to_expr() + other
    def __radd__(self, other): return self.to_expr() + other
    def __sub__(self, other): return self.to_expr() - other
    def __rsub__(self, other): return (-self.to_expr()) + other
    def __mul__(self, other): return self.to_expr() * other
    def __rmul__(self, other): return self.to_expr() * other
    def __neg__(self): return -self.to_expr()

    def __le__(self, other): return self.to_expr() <= other
    def __ge__(self, other): return self.to_expr() >= other
    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Variable):
            return self is other
        return self.to_expr() == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Var {self.name} {self.vtype.value} [{self.lower}, {self.upper}]>"


class LinExpr:
    """An affine expression ``sum(coeff * var) + constant``.

    Immutable in spirit: arithmetic returns new expressions. Terms with a
    zero coefficient are dropped eagerly to keep expressions small.
    """

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Union[Dict[Variable, float], None] = None,
        constant: Number = 0.0,
    ) -> None:
        self.terms: Dict[Variable, float] = {}
        if terms:
            for var, coeff in terms.items():
                if not isinstance(var, Variable):
                    raise ModelError(f"expression term key {var!r} is not a Variable")
                if coeff:
                    self.terms[var] = float(coeff)
        self.constant = float(constant)

    @staticmethod
    def total(items: Iterable[Union["LinExpr", Variable, Number]]) -> "LinExpr":
        """Sum an iterable of expressions/variables/numbers."""
        acc = LinExpr()
        for item in items:
            acc = acc + item
        return acc

    def _as_expr(self, other: Union["LinExpr", Variable, Number]) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other.to_expr()
        if isinstance(other, (int, float)):
            return LinExpr(constant=other)
        raise ModelError(f"cannot combine expression with {type(other).__name__}")

    def __add__(self, other):
        rhs = self._as_expr(other)
        terms = dict(self.terms)
        for var, coeff in rhs.terms.items():
            updated = terms.get(var, 0.0) + coeff
            if updated:
                terms[var] = updated
            else:
                terms.pop(var, None)
        return LinExpr(terms, self.constant + rhs.constant)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (self._as_expr(other) * -1.0)

    def __rsub__(self, other):
        return self._as_expr(other) + (self * -1.0)

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise ModelError("expressions only support scalar multiplication")
        if not scalar:
            return LinExpr()
        return LinExpr(
            {var: coeff * scalar for var, coeff in self.terms.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    # -- constraint building (implemented in model.py to avoid a cycle) ------

    def __le__(self, other):
        from repro.milp.model import Constraint, Sense

        return Constraint(self - self._as_expr(other), Sense.LE)

    def __ge__(self, other):
        from repro.milp.model import Constraint, Sense

        return Constraint(self - self._as_expr(other), Sense.GE)

    def __eq__(self, other):  # type: ignore[override]
        from repro.milp.model import Constraint, Sense

        return Constraint(self - self._as_expr(other), Sense.EQ)

    def __hash__(self) -> int:
        return id(self)

    def value(self, assignment: Dict[Variable, float]) -> float:
        """Evaluate under a variable assignment."""
        return self.constant + sum(
            coeff * assignment[var] for var, coeff in self.terms.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)
