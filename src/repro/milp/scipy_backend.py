"""LP relaxation backend using scipy's HiGHS.

Functionally interchangeable with :mod:`repro.milp.simplex` (the tests
assert agreement on random instances); HiGHS is much faster on the larger
binding formulations, so branch-and-bound defaults to it when scipy is
importable.

Branch-and-bound re-solves the *same* model thousands of times with only
variable bounds changing between nodes, so :func:`make_lp_solver`
prepares the per-model conversion once -- objective vector, sparse
constraint matrices -- and each node solve passes just its bounds.
:func:`solve_lp_scipy` remains the one-shot convenience entry point.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.errors import SolverError
from repro.milp.simplex import LPStatus, SimplexResult

__all__ = ["solve_lp_scipy", "make_lp_solver"]

NodeLPSolver = Callable[[np.ndarray, np.ndarray], SimplexResult]


def _from_linprog(result) -> SimplexResult:
    if result.status == 0:
        return SimplexResult(LPStatus.OPTIMAL, np.asarray(result.x), float(result.fun))
    if result.status == 2:
        return SimplexResult(LPStatus.INFEASIBLE, None, None)
    if result.status == 3:
        return SimplexResult(LPStatus.UNBOUNDED, None, None)
    raise SolverError(f"linprog failed: status={result.status} ({result.message})")


def solve_lp_scipy(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> SimplexResult:
    """Solve an LP with ``scipy.optimize.linprog`` (HiGHS method)."""
    bounds = list(zip(lower, upper))
    result = linprog(
        c,
        A_ub=a_ub if a_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    return _from_linprog(result)


def make_lp_solver(form) -> NodeLPSolver:
    """A bounds-only LP solver specialized to one model.

    ``form`` is the model's :class:`~repro.milp.model.StandardForm`. The
    objective and constraint matrices are converted (dense -> CSR) here,
    once; the returned callable takes only the per-node ``(lower,
    upper)`` arrays, which are the sole thing branch-and-bound mutates
    between node solves.
    """
    c = np.asarray(form.objective, dtype=float)
    a_ub = csr_matrix(form.a_ub) if form.a_ub.size else None
    b_ub = np.asarray(form.b_ub, dtype=float) if form.a_ub.size else None
    a_eq = csr_matrix(form.a_eq) if form.a_eq.size else None
    b_eq = np.asarray(form.b_eq, dtype=float) if form.a_eq.size else None

    def solve(lower: np.ndarray, upper: np.ndarray) -> SimplexResult:
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=np.column_stack((lower, upper)),
            method="highs",
        )
        return _from_linprog(result)

    return solve
