"""LP relaxation backend using scipy's HiGHS.

Functionally interchangeable with :mod:`repro.milp.simplex` (the tests
assert agreement on random instances); HiGHS is much faster on the larger
binding formulations, so branch-and-bound defaults to it when scipy is
importable.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.milp.simplex import LPStatus, SimplexResult

__all__ = ["solve_lp_scipy"]


def solve_lp_scipy(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> SimplexResult:
    """Solve an LP with ``scipy.optimize.linprog`` (HiGHS method)."""
    bounds = list(zip(lower, upper))
    result = linprog(
        c,
        A_ub=a_ub if a_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 0:
        return SimplexResult(LPStatus.OPTIMAL, np.asarray(result.x), float(result.fun))
    if result.status == 2:
        return SimplexResult(LPStatus.INFEASIBLE, None, None)
    if result.status == 3:
        return SimplexResult(LPStatus.UNBOUNDED, None, None)
    raise SolverError(f"linprog failed: status={result.status} ({result.message})")
