"""Mixed-integer linear programming substrate.

The paper solves its crossbar feasibility and binding formulations with
ILOG CPLEX. This subpackage is the offline stand-in: a small modeling
layer (:class:`~repro.milp.model.Model`), a pure-Python two-phase simplex
LP solver (:mod:`repro.milp.simplex`), a branch-and-bound MILP solver
(:mod:`repro.milp.branch_bound`) that can use either the built-in simplex
or scipy's HiGHS for LP relaxations, and solution/status objects.

The solvers are exact on the problem sizes the paper works with (at most
32 targets, a few thousand binaries) and are validated against brute-force
enumeration and scipy in the test suite.
"""

from repro.milp.expr import LinExpr, Variable, VarType
from repro.milp.model import Constraint, Model, Sense
from repro.milp.solution import Solution, SolveStatus
from repro.milp.simplex import SimplexResult, solve_lp_simplex
from repro.milp.scipy_backend import solve_lp_scipy
from repro.milp.branch_bound import BranchBoundOptions, solve_milp

__all__ = [
    "Variable",
    "VarType",
    "LinExpr",
    "Model",
    "Constraint",
    "Sense",
    "Solution",
    "SolveStatus",
    "SimplexResult",
    "solve_lp_simplex",
    "solve_lp_scipy",
    "solve_milp",
    "BranchBoundOptions",
]
