"""Mixed-integer linear programming substrate.

The paper solves its crossbar feasibility and binding formulations with
ILOG CPLEX. This subpackage is the offline stand-in: a small modeling
layer (:class:`~repro.milp.model.Model`), a pure-Python two-phase simplex
LP solver (:mod:`repro.milp.simplex`), a branch-and-bound MILP solver
(:mod:`repro.milp.branch_bound`) that can use either the built-in simplex
or scipy's HiGHS for LP relaxations, and solution/status objects.

:func:`~repro.milp.branch_bound.solve_milp` is the single entry point;
behind it sit three interchangeable backends (``reference`` -- the
pure-Python B&B and correctness oracle; ``highs`` -- the whole model
handed to HiGHS native branch and bound in
:mod:`repro.milp.highs_backend`; ``portfolio`` -- both raced in
parallel, first proof wins, :mod:`repro.milp.portfolio`) selected via
``BranchBoundOptions.backend`` or ``REPRO_MILP_BACKEND``.

The solvers are exact on the problem sizes the paper works with (at most
32 targets, a few thousand binaries) and are validated against brute-force
enumeration, scipy, and each other (the backend equivalence gate) in the
test suite.
"""

from repro.milp.expr import LinExpr, Variable, VarType
from repro.milp.model import Constraint, Model, Sense, StandardForm
from repro.milp.solution import Solution, SolveStatus, solution_from_vector
from repro.milp.simplex import SimplexResult, solve_lp_simplex
from repro.milp.scipy_backend import make_lp_solver, solve_lp_scipy
from repro.milp.branch_bound import (
    MILP_BACKENDS,
    BranchBoundOptions,
    resolve_default_backend,
    solve_milp,
)
from repro.milp.highs_backend import solve_milp_highs
from repro.milp.portfolio import race_portfolio, race_win_counts

__all__ = [
    "Variable",
    "VarType",
    "LinExpr",
    "Model",
    "Constraint",
    "Sense",
    "StandardForm",
    "Solution",
    "SolveStatus",
    "solution_from_vector",
    "SimplexResult",
    "solve_lp_simplex",
    "solve_lp_scipy",
    "make_lp_solver",
    "solve_milp",
    "solve_milp_highs",
    "race_portfolio",
    "race_win_counts",
    "BranchBoundOptions",
    "MILP_BACKENDS",
    "resolve_default_backend",
]
