"""Native HiGHS MILP backend (``scipy.optimize.milp``).

Hands the *whole* model to HiGHS branch-and-bound instead of running the
pure-Python search over LP relaxations: integrality is handled natively,
which is orders of magnitude faster on the large binding formulations
(Sec. 6 MILP2). The pure-Python solver in
:mod:`repro.milp.branch_bound` remains the correctness oracle -- the
equivalence gate in the test suite proves both backends report the same
verdicts and objectives, and the canonical-binding layer in
:mod:`repro.core.binding` makes the *reported designs* byte-identical
regardless of which backend produced the optimum.

Feasibility problems (the paper's MILP1) arrive with a zero objective,
which HiGHS solves as "any feasible point is optimal" -- exactly the
semantics of ``feasibility_only`` in the reference solver.

Warm starts: ``scipy.optimize.milp`` takes no MIP start, so a validated
warm incumbent enters as an *objective cutoff* row ``c @ x <= c @ warm``
appended to the inequality system. The cutoff prunes the part of the
tree above the incumbent without ever excluding the optimum. A warm
point that fails validation against the (possibly edited) model is
ignored -- warm starts are hints, never inputs to correctness.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint
from scipy.optimize import milp as _scipy_milp

from repro.errors import SolverError
from repro.milp.expr import Variable
from repro.milp.model import Model, StandardForm
from repro.milp.solution import Solution, SolveStatus, solution_from_vector

__all__ = ["solve_milp_highs", "warm_vector"]

_CUTOFF_SLACK = 1e-6
"""Slack added to the warm-incumbent cutoff so the incumbent itself
stays feasible under floating-point evaluation of ``c @ x``."""


def warm_vector(
    form: StandardForm, warm_values: Optional[Dict[Variable, float]]
) -> Optional[np.ndarray]:
    """Validate a warm-start hint against ``form``.

    Returns the hint as a column-ordered vector when it is a feasible
    integral point of the model, else ``None``. Shared by every backend
    so the acceptance rule -- and therefore the solve result -- cannot
    depend on which backend screened the hint.
    """
    if not warm_values:
        return None
    x = np.array(
        [warm_values.get(var, 0.0) for var in form.variables], dtype=float
    )
    return x if form.check_point(x) else None


def solve_milp_highs(
    model: Model,
    options,
    warm_values: Optional[Dict[Variable, float]] = None,
) -> Solution:
    """Solve ``model`` with HiGHS native branch-and-bound.

    ``options`` is a :class:`~repro.milp.branch_bound.BranchBoundOptions`;
    ``node_limit`` and ``time_limit`` map onto the corresponding HiGHS
    limits, ``feasibility_only`` needs no mapping (the zero objective
    already encodes it). Reported ``nodes`` is HiGHS's own MIP node
    count.
    """
    form = model.to_standard_form()
    warm_x = warm_vector(form, warm_values)
    if warm_x is not None and options.feasibility_only:
        # A validated warm point *is* the answer to a feasibility
        # problem; skip the solve entirely (zero nodes).
        return solution_from_vector(
            SolveStatus.OPTIMAL,
            warm_x,
            float(form.objective @ warm_x),
            form,
            nodes=0,
        )

    a_ub, b_ub = form.a_ub, form.b_ub
    if warm_x is not None and form.objective.any():
        cutoff = float(form.objective @ warm_x) + _CUTOFF_SLACK
        a_ub = np.vstack([a_ub, form.objective[None, :]])
        b_ub = np.append(b_ub, cutoff)

    constraints = []
    if a_ub.size:
        constraints.append(LinearConstraint(a_ub, -np.inf, b_ub))
    if form.a_eq.size:
        constraints.append(LinearConstraint(form.a_eq, form.b_eq, form.b_eq))

    milp_options = {"node_limit": int(options.node_limit)}
    if options.time_limit is not None:
        milp_options["time_limit"] = float(options.time_limit)

    result = _scipy_milp(
        c=form.objective,
        integrality=form.integer_mask.astype(int),
        bounds=Bounds(form.lower, form.upper),
        constraints=constraints or None,
        options=milp_options,
    )
    nodes = int(getattr(result, "mip_node_count", 0) or 0)

    if result.status == 0:
        return solution_from_vector(
            SolveStatus.OPTIMAL, result.x, float(result.fun), form, nodes
        )
    if result.status == 1:
        # A node or time limit fired. HiGHS folds both into one status;
        # attribute it to the deadline when one was set (mirroring the
        # reference solver's graceful-degradation contract), else to the
        # node budget.
        timed_out = options.time_limit is not None
        if result.x is not None:
            return solution_from_vector(
                SolveStatus.FEASIBLE,
                result.x,
                float(result.fun),
                form,
                nodes,
                timed_out=timed_out,
            )
        status = SolveStatus.TIME_LIMIT if timed_out else SolveStatus.NODE_LIMIT
        return Solution(status, nodes=nodes, timed_out=timed_out)
    if result.status == 2:
        return Solution(SolveStatus.INFEASIBLE, nodes=nodes)
    if result.status == 3:
        return Solution(SolveStatus.UNBOUNDED, nodes=nodes)
    raise SolverError(
        f"scipy.optimize.milp failed: status={result.status} ({result.message})"
    )
