"""Racing MILP portfolio: reference B&B vs HiGHS, first proof wins.

On hard instances neither backend dominates: the pure-Python reference
solver's best-first search occasionally proves optimality in a handful
of nodes where HiGHS's presolve overhead dominates, while HiGHS is
orders of magnitude faster on the large binding formulations. The
portfolio runs both in parallel worker processes and returns as soon as
either produces a *proven* answer (optimal / infeasible / unbounded),
terminating the loser.

Determinism: the exactness of both backends means any proven answer
agrees on verdict and objective value, so first-proof-wins cannot
change what callers observe (and the canonical-binding layer in
:mod:`repro.core.binding` keeps reported designs byte-identical even
under degenerate ties). The only nondeterminism a race could introduce
is through *limit-degraded* answers -- a node or time budget expiring
with an unproven incumbent. Those never win the race directly: they
are held until both workers have reported, then resolved with a fixed
reference-first tie-break. The practical caveat remains that a
limit-degraded result itself (which incumbent was in hand when the
budget died) is timing-dependent inside either backend; equivalence
guarantees apply to solves that complete within their budgets.

Workers are spawned with the engine's preferred multiprocessing context
(:func:`repro.exec.engine.preferred_mp_context`, fork where available).
Where worker processes cannot be spawned at all -- inside a daemonic
pool worker, or when the OS refuses -- the race degrades to an
in-process HiGHS solve rather than failing.

Solutions cross the process boundary as index-aligned value vectors
(variable identity does not survive independent pickling; column order
does).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.milp.expr import Variable
from repro.milp.model import Model
from repro.milp.solution import Solution, SolveStatus, solution_from_vector
from repro.obs import metrics as _metrics

__all__ = ["race_portfolio", "race_win_counts", "RACE_BACKENDS"]

RACE_BACKENDS = ("reference", "highs")
"""Backends entered into every race, in tie-break priority order."""

_POLL_SECONDS = 0.05

_RACE_WINS = _metrics.counter(
    "repro_race_wins_total",
    "Portfolio races won, by MILP backend.",
    ("backend",),
)

_PROVEN = frozenset(
    {SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED}
)


def race_win_counts() -> Dict[str, int]:
    """Races won so far this process, keyed by backend name."""
    return {
        key[0]: int(value) for key, value in _RACE_WINS.collect().items()
    }


def _encode(solution: Solution, model: Model) -> Dict[str, object]:
    """Flatten a solution for the queue (index-aligned, no Variables)."""
    x = None
    if solution.values:
        x = [
            float(solution.values.get(var, 0.0)) for var in model.variables
        ]
    return {
        "status": solution.status.name,
        "objective": solution.objective,
        "x": x,
        "nodes": solution.nodes,
        "timed_out": solution.timed_out,
    }


def _race_worker(backend: str, model, options, warm_values, queue) -> None:
    """Child-process entry: solve with one backend, post the outcome."""
    import dataclasses

    from repro.milp.branch_bound import solve_milp

    try:
        solution = solve_milp(
            model,
            dataclasses.replace(options, backend=backend),
            warm_values,
        )
        queue.put((backend, _encode(solution, model)))
    except BaseException as exc:  # noqa: BLE001 - loser must not hang the race
        try:
            queue.put((backend, {"error": repr(exc)}))
        except Exception:  # noqa: BLE001 - queue already torn down
            pass


def _decode(payload: Dict[str, object], form) -> Solution:
    status = SolveStatus[payload["status"]]
    x = payload["x"]
    return solution_from_vector(
        status,
        np.asarray(x, dtype=float) if x is not None else None,
        payload["objective"],
        form,
        int(payload["nodes"]),
        timed_out=bool(payload["timed_out"]),
    )


def _fallback_in_process(
    model: Model, options, warm_values
) -> Solution:
    """No worker processes available: solve with HiGHS right here."""
    from repro.milp.highs_backend import solve_milp_highs

    solution = solve_milp_highs(model, options, warm_values)
    _RACE_WINS.inc(backend="highs")
    return solution


def race_portfolio(
    model: Model,
    options,
    warm_values: Optional[Dict[Variable, float]] = None,
) -> Solution:
    """Race the reference and HiGHS backends; first proven answer wins.

    ``options`` is a :class:`~repro.milp.branch_bound.BranchBoundOptions`
    whose limits apply to *each* contestant independently.
    """
    import multiprocessing as mp

    from repro.exec.engine import preferred_mp_context

    if mp.current_process().daemon:
        return _fallback_in_process(model, options, warm_values)

    context = preferred_mp_context()
    queue = context.Queue()
    workers = {}
    try:
        for backend in RACE_BACKENDS:
            process = context.Process(
                target=_race_worker,
                args=(backend, model, options, warm_values, queue),
                name=f"repro-race-{backend}",
            )
            process.start()
            workers[backend] = process
    except OSError:
        for process in workers.values():
            process.terminate()
            process.join()
        return _fallback_in_process(model, options, warm_values)

    form = model.to_standard_form()
    held: Dict[str, Solution] = {}
    winner: Optional[Tuple[str, Solution]] = None
    try:
        while winner is None:
            drained = False
            while True:
                try:
                    backend, payload = queue.get_nowait()
                except Exception:  # noqa: BLE001 - queue.Empty (context-local)
                    break
                drained = True
                if "error" in payload:
                    continue  # dead contestant; the other may still answer
                solution = _decode(payload, form)
                if solution.status in _PROVEN:
                    winner = (backend, solution)
                    break
                held[backend] = solution
            if winner is not None:
                break
            finished = [
                backend
                for backend, process in workers.items()
                if not process.is_alive()
            ]
            if len(finished) == len(workers) and not drained:
                # Everyone reported (or died); no proof arrived. Resolve
                # limit-degraded incumbents with the fixed priority
                # order so the outcome never depends on arrival timing.
                for backend in RACE_BACKENDS:
                    if backend in held:
                        winner = (backend, held[backend])
                        break
                if winner is None:
                    raise SolverError(
                        "portfolio race failed: every backend crashed "
                        "without producing a solution"
                    )
                break
            if winner is None and not drained:
                try:
                    backend, payload = queue.get(timeout=_POLL_SECONDS)
                except Exception:  # noqa: BLE001 - Empty; loop re-checks liveness
                    continue
                if "error" in payload:
                    continue
                solution = _decode(payload, form)
                if solution.status in _PROVEN:
                    winner = (backend, solution)
                else:
                    held[backend] = solution
    finally:
        for process in workers.values():
            if process.is_alive():
                process.terminate()
            process.join()
        queue.close()
        queue.cancel_join_thread()

    backend, solution = winner
    _RACE_WINS.inc(backend=backend)
    return solution
