"""Per-phase wall-clock accounting for the synthesis pipeline.

The synthesis flow decomposes into four phases whose relative cost the
``--profile`` CLI flag reports: **windowing** (building ``comm`` /
``critical_comm``), **overlap** (the pairwise ``wo`` tensor and
criticality analysis), **conflicts** (the pre-processing rules) and
**solve** (configuration search plus optimal binding). The library
reports into a process-global :class:`PhaseTimer` -- the same pattern as
:data:`repro.core.instrumentation.SOLVE_COUNTER`, and with the same
caveat: work fanned out to pool workers is timed in the workers, not in
the parent process.

This module sits below every other ``repro`` subpackage (it imports only
the standard library) so that traffic-, core- and exec-layer code can
all report phases without import cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["PhaseTimer", "PHASE_TIMER", "track_phase"]

PHASES = ("windowing", "overlap", "conflicts", "solve")
"""Canonical phase order for reports (unknown phases sort after these)."""


class PhaseTimer:
    """Accumulates wall-clock seconds and entry counts per phase."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @property
    def totals(self) -> Dict[str, float]:
        """Accumulated seconds per phase (a copy)."""
        return dict(self._totals)

    @property
    def counts(self) -> Dict[str, int]:
        """Number of tracked entries per phase (a copy)."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero all accumulators."""
        self._totals.clear()
        self._counts.clear()

    def add(self, phase: str, seconds: float) -> None:
        """Record ``seconds`` of work attributed to ``phase``."""
        self._totals[phase] = self._totals.get(phase, 0.0) + seconds
        self._counts[phase] = self._counts.get(phase, 0) + 1

    @contextmanager
    def track(self, phase: str) -> Iterator[None]:
        """Time a ``with`` block and attribute it to ``phase``."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - begin)

    def format_report(self, total_elapsed: Optional[float] = None) -> str:
        """Plain-text per-phase breakdown (for the ``--profile`` flag).

        ``total_elapsed`` adds an ``other`` row covering the time spent
        outside every tracked phase (simulation, I/O, cache look-ups).
        """
        rows = []
        tracked = 0.0
        order = {name: rank for rank, name in enumerate(PHASES)}
        for phase in sorted(
            self._totals, key=lambda name: (order.get(name, len(order)), name)
        ):
            seconds = self._totals[phase]
            tracked += seconds
            rows.append((phase, seconds, self._counts.get(phase, 0)))
        if total_elapsed is not None:
            rows.append(("other", max(0.0, total_elapsed - tracked), 0))
        denominator = total_elapsed if total_elapsed else tracked
        lines = ["phase breakdown (wall-clock):"]
        if not rows:
            lines.append("  (no phases recorded)")
        for phase, seconds, count in rows:
            share = seconds / denominator if denominator else 0.0
            calls = f"{count:>5}x" if count else "      "
            lines.append(
                f"  {phase:<10} {seconds:>9.4f} s  {share:>6.1%}  {calls}"
            )
        if total_elapsed is not None:
            lines.append(f"  {'total':<10} {total_elapsed:>9.4f} s")
        return "\n".join(lines)


PHASE_TIMER = PhaseTimer()
"""The process-global timer the pipeline phases report to."""


def track_phase(phase: str, timer: Optional[PhaseTimer] = None):
    """Context manager timing one pipeline phase (module-level hook)."""
    return (timer or PHASE_TIMER).track(phase)
