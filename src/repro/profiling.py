"""Per-phase wall-clock accounting -- now a shim over :mod:`repro.obs`.

The synthesis flow decomposes into four phases whose relative cost the
``--profile`` CLI flag reports: **windowing** (building ``comm`` /
``critical_comm``), **overlap** (the pairwise ``wo`` tensor and
criticality analysis), **conflicts** (the pre-processing rules) and
**solve** (configuration search plus optimal binding).

Historically this module was its own bookkeeping; it is now a thin view
over the unified observability layer. :meth:`PhaseTimer.track` opens a
``phase.<name>`` span (so phase timings appear in trace trees next to
pipeline-stage spans) and the process-global :data:`PHASE_TIMER`
mirrors every recording into the ``repro_phase_seconds`` histogram, so
``--profile`` and ``GET /metrics`` can no longer disagree. The local
totals/counts survive as the *resettable* view -- registry counters are
monotonic for the process lifetime, while ``--profile`` wants
per-invocation numbers.

The module still imports nothing above :mod:`repro.obs` (stdlib-only),
so traffic-, core- and exec-layer code can all report phases without
import cycles. Like ``SOLVE_COUNTER``, accounting is process-local:
work fanned out to pool workers is timed in the workers (where it
reaches the trace tree via span spooling), not in the parent.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

__all__ = ["PhaseTimer", "PHASE_TIMER", "track_phase"]

PHASES = ("windowing", "overlap", "conflicts", "solve")
"""Canonical phase order for reports (unknown phases sort after these)."""

_PHASE_SECONDS = _metrics.histogram(
    "repro_phase_seconds",
    "Wall-clock seconds spent per synthesis phase.",
    ("phase",),
)


class PhaseTimer:
    """Accumulates wall-clock seconds and entry counts per phase.

    ``mirror_registry`` (the global timer only) forwards every
    recording into ``repro_phase_seconds``; private timers stay local
    so scoped measurements never double-count the registry.
    """

    def __init__(self, mirror_registry: bool = False) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._mirror = mirror_registry

    @property
    def totals(self) -> Dict[str, float]:
        """Accumulated seconds per phase (a copy)."""
        with self._lock:
            return dict(self._totals)

    @property
    def counts(self) -> Dict[str, int]:
        """Number of tracked entries per phase (a copy)."""
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        """Zero the local accumulators (the registry mirror is
        monotonic and is deliberately left alone)."""
        with self._lock:
            self._totals.clear()
            self._counts.clear()

    def add(self, phase: str, seconds: float) -> None:
        """Record ``seconds`` of work attributed to ``phase``."""
        with self._lock:
            self._totals[phase] = self._totals.get(phase, 0.0) + seconds
            self._counts[phase] = self._counts.get(phase, 0) + 1
        if self._mirror:
            _PHASE_SECONDS.observe(seconds, phase=phase)

    @contextmanager
    def track(self, phase: str) -> Iterator[None]:
        """Time a ``with`` block and attribute it to ``phase``.

        Also opens a ``phase.<name>`` span, so with tracing armed the
        phase shows up in the job's trace tree.
        """
        begin = time.perf_counter()
        with _tracing.span(f"phase.{phase}"):
            try:
                yield
            finally:
                self.add(phase, time.perf_counter() - begin)

    def format_report(self, total_elapsed: Optional[float] = None) -> str:
        """Plain-text per-phase breakdown (for the ``--profile`` flag).

        ``total_elapsed`` adds an ``other`` row covering the time spent
        outside every tracked phase (simulation, I/O, cache look-ups).
        """
        with self._lock:
            totals = dict(self._totals)
            counts = dict(self._counts)
        rows = []
        tracked = 0.0
        order = {name: rank for rank, name in enumerate(PHASES)}
        for phase in sorted(
            totals, key=lambda name: (order.get(name, len(order)), name)
        ):
            seconds = totals[phase]
            tracked += seconds
            rows.append((phase, seconds, counts.get(phase, 0)))
        if total_elapsed is not None:
            rows.append(("other", max(0.0, total_elapsed - tracked), 0))
        denominator = total_elapsed if total_elapsed else tracked
        lines = ["phase breakdown (wall-clock):"]
        if not rows:
            lines.append("  (no phases recorded)")
        for phase, seconds, count in rows:
            share = seconds / denominator if denominator else 0.0
            calls = f"{count:>5}x" if count else "      "
            lines.append(
                f"  {phase:<10} {seconds:>9.4f} s  {share:>6.1%}  {calls}"
            )
        if total_elapsed is not None:
            lines.append(f"  {'total':<10} {total_elapsed:>9.4f} s")
        return "\n".join(lines)


PHASE_TIMER = PhaseTimer(mirror_registry=True)
"""The process-global timer the pipeline phases report to."""


def track_phase(phase: str, timer: Optional[PhaseTimer] = None):
    """Context manager timing one pipeline phase (module-level hook)."""
    return (timer or PHASE_TIMER).track(phase)
