"""A single STbus bus.

A bus serializes transfers: one holder at a time, chosen by the attached
arbiter. The :meth:`Bus.transfer` generator encapsulates the STbus grant
protocol -- request, registered-arbiter delay, occupancy, release -- and
is yielded from initiator/target processes.

Busy intervals are logged so utilization statistics and demand timelines
can be reconstructed after simulation.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.sim.engine import Engine
from repro.sim.resource import Resource

__all__ = ["Bus"]


class Bus:
    """An arbitrated bus with occupancy bookkeeping.

    Parameters
    ----------
    engine:
        Simulation engine.
    name:
        Human-readable identifier (e.g. ``"it-bus2"``).
    policy:
        Arbitration policy (see :mod:`repro.platform.arbiter`).
    arbitration_cycles:
        Registered-arbiter delay paid after each grant, before the data
        beats start (the bus is held during this turnaround).
    """

    def __init__(self, engine: Engine, name: str, policy, arbitration_cycles: int) -> None:
        self._engine = engine
        self._resource = Resource(
            engine, capacity=1, policy=policy, record_busy=True, name=name
        )
        self.name = name
        self.arbitration_cycles = arbitration_cycles
        self.transfers = 0

    def transfer(self, owner: Any, occupancy: int):
        """Generator: acquire, hold ``arb + occupancy`` cycles, release.

        Yield from an initiator/target process. Returns the ``(grant,
        release)`` cycle pair. The grant timestamp marks the start of the
        bus hold (arbitration turnaround included), which is what the
        traffic analysis measures as stream activity.
        """
        request = self._resource.acquire(owner=owner)
        yield request.granted
        grant = self._engine.now
        yield self.arbitration_cycles + occupancy
        self._resource.release(request)
        self.transfers += 1
        return grant, self._engine.now

    @property
    def busy_log(self) -> List[Tuple[int, int, Any]]:
        """Completed holds as ``(grant, release, owner)`` tuples."""
        return self._resource.busy_log

    def busy_cycles(self) -> int:
        """Total cycles the bus was held."""
        return sum(end - start for start, end, _owner in self._resource.busy_log)

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the bus was held."""
        if total_cycles <= 0:
            return 0.0
        return self.busy_cycles() / float(total_cycles)

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for this bus."""
        return self._resource.queue_length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Bus {self.name} transfers={self.transfers}>"
