"""Target (slave) core models.

Targets are memories and memory-like devices. Each serves one request at
a time through a private port (concurrent requests queue at the target
even on a full crossbar, as in a real single-ported SRAM), with a
configurable number of wait states.

Three kinds appear in the paper's MPSoCs:

* ``MEMORY`` -- private or shared RAM,
* ``SEMAPHORE`` -- lock words for inter-processor synchronization,
* ``INTERRUPT`` -- the interrupt device used to signal between cores.

The kinds differ only in default timing here; their *semantic* role
(locks, barriers) is coordinated by the SoC's synchronization managers,
which keep the semantics exact while the bus traffic stays faithful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.resource import Resource, fifo_policy

__all__ = ["TargetKind", "TargetConfig", "TargetPort"]


class TargetKind(enum.Enum):
    """Functional class of a target core."""

    MEMORY = "memory"
    SEMAPHORE = "semaphore"
    INTERRUPT = "interrupt"


@dataclass(frozen=True)
class TargetConfig:
    """Static description of one target.

    Attributes
    ----------
    name:
        Core name (e.g. ``"pm3"``, ``"shared"``, ``"sem"``).
    kind:
        Functional class; informs defaults and reporting.
    service_cycles:
        Wait states between request arrival and response readiness.
    critical:
        Whether traffic to this target is real-time (paper Sec. 7.3);
        transactions to critical targets are flagged in the trace.
    """

    name: str
    kind: TargetKind = TargetKind.MEMORY
    service_cycles: int = 1
    critical: bool = False

    def __post_init__(self) -> None:
        if self.service_cycles < 0:
            raise ConfigurationError(
                f"target {self.name!r} has negative service cycles"
            )


class TargetPort:
    """Runtime state of a target: its single-served port."""

    def __init__(self, engine: Engine, config: TargetConfig) -> None:
        self.config = config
        self._engine = engine
        self._port = Resource(
            engine, capacity=1, policy=fifo_policy, record_busy=True,
            name=f"{config.name}-port",
        )

    def serve(self):
        """Generator: occupy the port for the configured wait states.

        Returns the ``(start, end)`` service interval.
        """
        request = self._port.acquire(owner=self.config.name)
        yield request.granted
        start = self._engine.now
        if self.config.service_cycles:
            yield self.config.service_cycles
        self._port.release(request)
        return start, self._engine.now

    @property
    def busy_log(self):
        """Completed service intervals ``(start, end, owner)``."""
        return self._port.busy_log
