"""Frequency and data-width interface adapters.

STbus crossbars interconnect heterogeneous cores through type-converter
and size-converter components. The model captures their two first-order
timing effects:

* ``width_ratio`` -- a narrow core interface stretches each payload word
  over more bus beats (a 0.5-width target doubles payload cycles),
* ``extra_cycles`` -- pipeline registers in the adapter add fixed latency
  to every traversal.

Adapters are attached per core in the SoC configuration; the SoC applies
the request-path adapter of the *target* and the response-path adapter of
the *initiator*, which is where STbus places the converters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AdapterConfig", "IDENTITY_ADAPTER"]


@dataclass(frozen=True)
class AdapterConfig:
    """Timing behaviour of one interface adapter.

    ``width_ratio`` is bus-width / core-width: values above 1 mean the
    core is narrower than the bus and payload beats multiply accordingly.
    """

    width_ratio: float = 1.0
    extra_cycles: int = 0

    def __post_init__(self) -> None:
        if self.width_ratio <= 0:
            raise ConfigurationError(
                f"adapter width_ratio must be positive, got {self.width_ratio}"
            )
        if self.extra_cycles < 0:
            raise ConfigurationError(
                f"adapter extra_cycles must be >= 0, got {self.extra_cycles}"
            )

    def adjust_payload(self, payload_cycles: int) -> int:
        """Payload beats after width conversion."""
        if self.width_ratio == 1.0:
            return payload_cycles
        return math.ceil(payload_cycles * self.width_ratio)

    def traversal_overhead(self) -> int:
        """Fixed pipeline cycles added per traversal."""
        return self.extra_cycles


IDENTITY_ADAPTER = AdapterConfig()
"""A pass-through adapter (same width, no extra latency)."""
