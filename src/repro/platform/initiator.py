"""Initiator (master) programs and the workload operation vocabulary.

Initiators execute *programs*: plain Python iterables of operation
objects. The vocabulary mirrors what the MPARM benchmark kernels do at
the bus level:

* :class:`Compute` -- busy-loop for N cycles (no bus traffic),
* :class:`Read` / :class:`Write` -- a blocking burst access to a target,
* :class:`Lock` / :class:`Unlock` -- spin-lock acquisition through a
  semaphore target (polling reads, then a set write),
* :class:`Barrier` -- barrier synchronization through a semaphore target
  (an arrival write, then polling reads until the last core arrives).

Lock/barrier *semantics* (who wins, when a barrier opens) are arbitrated
by the SoC's synchronization managers so they are exact and deterministic,
while the polling traffic on the semaphore target is simulated faithfully
-- this reproduces the low-rate semaphore/interrupt streams the paper
describes alongside the heavy private-memory streams.

:func:`trace_replay_program` converts recorded traffic (e.g. a synthetic
trace) back into a program, so any trace can be re-simulated on any
candidate crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.errors import ApplicationError
from repro.traffic.events import TraceRecord, TransactionKind

__all__ = [
    "Compute",
    "Read",
    "Write",
    "Lock",
    "Unlock",
    "Barrier",
    "Operation",
    "trace_replay_program",
]


@dataclass(frozen=True)
class Compute:
    """Execute for ``cycles`` without touching the interconnect."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ApplicationError(f"compute cycles must be >= 0, got {self.cycles}")


@dataclass(frozen=True)
class Read:
    """Blocking burst read of ``burst`` words from ``target``."""

    target: int
    burst: int = 1
    critical: bool = False
    stream: str = ""


@dataclass(frozen=True)
class Write:
    """Blocking burst write of ``burst`` words to ``target``."""

    target: int
    burst: int = 1
    critical: bool = False
    stream: str = ""


@dataclass(frozen=True)
class Lock:
    """Acquire lock ``lock_id`` hosted on semaphore target ``semaphore``.

    The initiator issues a test read; if the manager reports the lock
    taken, it retries every ``poll_cycles``. On success it writes the lock
    word and proceeds.
    """

    semaphore: int
    lock_id: int = 0
    poll_cycles: int = 25


@dataclass(frozen=True)
class Unlock:
    """Release lock ``lock_id`` on semaphore target ``semaphore``."""

    semaphore: int
    lock_id: int = 0


@dataclass(frozen=True)
class Barrier:
    """Synchronize ``participants`` initiators at barrier ``barrier_id``.

    Arrival is announced with a write to the semaphore target; the
    initiator then polls with reads every ``poll_cycles`` until everyone
    has arrived.
    """

    semaphore: int
    barrier_id: int
    participants: int
    poll_cycles: int = 40


Operation = Union[Compute, Read, Write, Lock, Unlock, Barrier]


def trace_replay_program(
    records: Iterable[TraceRecord],
    pace: bool = True,
    start: int = 0,
) -> Iterator[Operation]:
    """Turn one initiator's trace records back into a program.

    With ``pace`` (default) the program inserts :class:`Compute` delays to
    issue each access at its recorded issue cycle when possible; under
    contention the program falls behind and issues back to back, modeling
    a master with a queued workload. Without ``pace`` all accesses are
    issued back to back.

    ``start`` is the absolute cycle the program begins executing at.
    Drivers that schedule an initiator's process directly at its first
    recorded issue cycle (see
    :class:`~repro.platform.drivers.TraceDrivenInitiator`) pass it so the
    pacing clock starts in sync instead of re-inserting the initial gap
    as a leading :class:`Compute`.

    The produced program tracks its own notion of time from the *recorded*
    timestamps; the SoC clock may run later (never earlier) than this
    when the new fabric is more congested than the one that produced the
    trace.
    """
    ordered = sorted(records, key=lambda record: record.issue)
    clock = start
    for record in ordered:
        if pace and record.issue > clock:
            yield Compute(record.issue - clock)
            clock = record.issue
        op_class = Read if record.kind is TransactionKind.READ else Write
        yield op_class(
            target=record.target,
            burst=record.burst,
            critical=record.critical,
            stream=record.stream,
        )
        # account the uncontended duration so pacing stays approximate
        clock = max(clock, record.complete)
