"""Pluggable workload drivers for the platform simulator.

Historically the only way to drive a fabric was a live application
program: :class:`~repro.platform.soc.SoC` interpreted per-initiator
operation streams built by an :class:`~repro.apps.descriptor.Application`.
That coupling meant recorded traffic -- synthetic profile traces,
load-thinned application traces -- could not be pushed through the
arbiter/bus/target models at all, so candidate crossbars for those
workloads went without simulated-latency validation.

This module makes the workload a first-class *driver* layer:

* :class:`WorkloadDriver` -- the protocol every driver satisfies: a
  platform description, fresh per-initiator programs, a recommended
  cycle budget, and a JSON-able content key for caching,
* :class:`ProgramDriver` -- the existing program-driven initiator path,
  wrapping an application's platform and program builders,
* :class:`TraceDrivenInitiator` -- replays a recorded
  :class:`~repro.traffic.trace.TrafficTrace` through the fabric:
  each initiator re-issues its recorded transactions at their recorded
  issue cycles (falling back to back-to-back issue when the candidate
  fabric is more congested), so inter-transaction gaps, load scaling
  and thinning already baked into the trace are respected exactly.

:func:`simulate_workload` is the single simulation entry point both
drivers share; everything that replays a design (the synthesis
validation stage, scenario-suite latency replay, engine evaluation)
routes through it.

Contracts
---------
* **Content addressing.** Every driver exposes
  :meth:`WorkloadDriver.workload_key` -- a JSON-able content key the
  replay stage fingerprints together with the fabric bindings and the
  cycle budget, so simulated latencies are cacheable; drivers that
  cannot be content-addressed raise and their replays simply never
  cache.
* **Caching.** Drivers hold no cache themselves -- replay results
  persist as :class:`~repro.pipeline.artifacts.ReplayArtifact` stage
  entries through the pipeline store.
* **Determinism.** A driver's programs are rebuilt fresh per
  simulation and are deterministic given the driver's inputs: the
  program-driven and trace-driven paths produce identical
  per-transaction timestamps when replaying a recording on its source
  fabric (asserted by ``tests/platform/test_drivers.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError
from repro.platform.initiator import Operation, trace_replay_program
from repro.platform.soc import SimulationResult, SoC, SoCConfig
from repro.platform.target import TargetConfig
from repro.traffic.trace import TrafficTrace

__all__ = [
    "WorkloadDriver",
    "ProgramDriver",
    "TraceDrivenInitiator",
    "replay_platform",
    "platform_spec",
    "simulate_workload",
]


@runtime_checkable
class WorkloadDriver(Protocol):
    """What it takes to drive a fabric: platform + programs + identity.

    A driver owns the *workload* half of a simulation; the caller owns
    the *fabric* half (the crossbar bindings under evaluation). The two
    halves meet in :func:`simulate_workload`.
    """

    @property
    def platform(self) -> SoCConfig:
        """The platform description the workload runs on."""
        ...

    @property
    def sim_cycles(self) -> int:
        """Recommended simulation budget covering the workload."""
        ...

    @property
    def label(self) -> str:
        """Human-readable workload name for reports."""
        ...

    def build_programs(self) -> List[Iterable[Operation]]:
        """Fresh per-initiator operation streams (consumed by one run)."""
        ...

    def start_cycles(self) -> Optional[List[int]]:
        """Per-initiator absolute start cycles, or ``None`` for cycle 0.

        Trace replay schedules each initiator's process at its first
        recorded issue cycle; program-driven workloads start everyone at
        cycle 0 as always.
        """
        ...

    def workload_key(self) -> Dict[str, Any]:
        """JSON-able content key identifying this exact workload.

        Two drivers with equal keys must produce identical simulations
        on identical fabrics -- the property replay caching relies on.
        """
        ...


def platform_spec(config: SoCConfig) -> Dict[str, Any]:
    """JSON-able encoding of every :class:`SoCConfig` field that can
    influence a simulation; part of a driver's workload key."""
    return {
        "initiators": list(config.initiator_names),
        "targets": [
            {
                "name": target.name,
                "kind": target.kind.value,
                "service_cycles": target.service_cycles,
                "critical": target.critical,
            }
            for target in config.targets
        ],
        "timing": {
            "arbitration_cycles": config.timing.arbitration_cycles,
            "header_cycles": config.timing.header_cycles,
            "cycles_per_word": config.timing.cycles_per_word,
        },
        "arbitration": config.arbitration,
        "initiator_adapters": {
            str(index): [adapter.width_ratio, adapter.extra_cycles]
            for index, adapter in sorted(config.initiator_adapters.items())
        },
        "target_adapters": {
            str(index): [adapter.width_ratio, adapter.extra_cycles]
            for index, adapter in sorted(config.target_adapters.items())
        },
        "seed": config.seed,
    }


def replay_platform(trace: TrafficTrace) -> SoCConfig:
    """A generic platform matching a recorded trace's shape.

    Profile-generated traces carry no platform description of their
    own; replay gives them memory-kind targets with the default single
    wait state and the trace's core names. Application traces should
    replay on the application's real platform instead (pass the app's
    ``config`` to :class:`TraceDrivenInitiator`).
    """
    return SoCConfig(
        initiator_names=list(trace.initiator_names),
        targets=[TargetConfig(name=name) for name in trace.target_names],
    )


class ProgramDriver:
    """The program-driven workload: live application programs.

    Parameters
    ----------
    config:
        Platform description.
    program_builders:
        One zero-argument callable per initiator returning a fresh
        operation iterator.
    sim_cycles:
        Recommended simulation budget.
    label:
        Workload name for reports.
    source_key:
        Canonical content key of the program source (e.g. an
        application registry name plus its build parameters). ``None``
        marks a workload that cannot be content-addressed -- replay
        results for it are never cached.
    """

    def __init__(
        self,
        config: SoCConfig,
        program_builders: Sequence,
        sim_cycles: int,
        label: str = "",
        source_key: Optional[str] = None,
    ) -> None:
        if len(program_builders) != config.num_initiators:
            raise ConfigurationError(
                f"{len(program_builders)} program builders for "
                f"{config.num_initiators} initiators"
            )
        if sim_cycles < 1:
            raise ConfigurationError("sim_cycles must be >= 1")
        self._config = config
        self._builders = tuple(program_builders)
        self._sim_cycles = int(sim_cycles)
        self._label = label
        self.source_key = source_key

    @property
    def platform(self) -> SoCConfig:
        return self._config

    @property
    def sim_cycles(self) -> int:
        return self._sim_cycles

    @property
    def label(self) -> str:
        return self._label

    def build_programs(self) -> List[Iterable[Operation]]:
        return [builder() for builder in self._builders]

    def start_cycles(self) -> Optional[List[int]]:
        return None

    def workload_key(self) -> Dict[str, Any]:
        if self.source_key is None:
            raise ConfigurationError(
                f"program workload {self._label!r} has no source key; only "
                f"content-addressed workloads can key replay caches"
            )
        return {
            "kind": "program",
            "source": self.source_key,
            "platform": platform_spec(self._config),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProgramDriver {self._label!r} ({len(self._builders)} programs)>"


class TraceDrivenInitiator:
    """Replays a recorded trace through the fabric models.

    Each initiator's recorded transactions become a replay program
    (:func:`~repro.platform.initiator.trace_replay_program`): accesses
    re-issue at their recorded issue cycles, preserving the recorded
    inter-transaction gaps; when the candidate fabric is more congested
    than the one that produced the trace, the initiator falls behind
    and issues back to back, modeling a master with a queued workload.
    Load scaling and thinning need no special handling -- they are
    already reflected in the records being replayed.

    Parameters
    ----------
    trace:
        The recorded traffic to replay.
    config:
        Platform to replay on; defaults to the generic
        :func:`replay_platform` shape derived from the trace.
        Application traces should pass the application's own config so
        target service times match the original platform.
    pace:
        Issue at recorded cycles (default) or back to back.
    label:
        Workload name for reports.
    """

    def __init__(
        self,
        trace: TrafficTrace,
        config: Optional[SoCConfig] = None,
        pace: bool = True,
        label: str = "",
    ) -> None:
        if config is None:
            config = replay_platform(trace)
        if (
            config.num_initiators != trace.num_initiators
            or config.num_targets != trace.num_targets
        ):
            raise ConfigurationError(
                f"replay platform is {config.num_initiators}x"
                f"{config.num_targets} but the trace was recorded on "
                f"{trace.num_initiators}x{trace.num_targets}"
            )
        self.trace = trace
        self._config = config
        self.pace = bool(pace)
        self._label = label

    @property
    def platform(self) -> SoCConfig:
        return self._config

    @property
    def sim_cycles(self) -> int:
        """Four times the recorded period: room for congested fabrics."""
        return max(1, self.trace.total_cycles) * 4

    @property
    def label(self) -> str:
        return self._label

    def build_programs(self) -> List[Iterable[Operation]]:
        # One pass over the records instead of one full scan per
        # initiator; programs are materialized lists so a driver can be
        # reused across several candidate fabrics. The initial idle gap
        # is handled by process scheduling (:meth:`start_cycles`), not a
        # leading Compute, so idle initiators never enter the event
        # queue before their first recorded transaction is due.
        return [
            list(
                trace_replay_program(records, pace=self.pace, start=start)
            )
            for records, start in zip(
                self._records_per_initiator(),
                self.start_cycles() or [0] * self.trace.num_initiators,
            )
        ]

    def _records_per_initiator(self) -> List[List]:
        per_initiator: List[List] = [
            [] for _ in range(self.trace.num_initiators)
        ]
        for record in self.trace.records:
            per_initiator[record.initiator].append(record)
        return per_initiator

    def start_cycles(self) -> Optional[List[int]]:
        if not self.pace:
            return None
        starts = [0] * self.trace.num_initiators
        first_seen: Dict[int, int] = {}
        for record in self.trace.records:  # records are sorted by issue
            if record.initiator not in first_seen:
                first_seen[record.initiator] = record.issue
        for initiator, issue in first_seen.items():
            starts[initiator] = issue
        return starts

    def workload_key(self) -> Dict[str, Any]:
        from repro.exec.fingerprint import trace_fingerprint

        return {
            "kind": "trace-replay",
            "trace": trace_fingerprint(self.trace),
            "pace": self.pace,
            "platform": platform_spec(self._config),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceDrivenInitiator {len(self.trace)} records on "
            f"{self._config.num_initiators}x{self._config.num_targets}>"
        )


def simulate_workload(
    driver: WorkloadDriver,
    it_binding: Sequence[int],
    ti_binding: Sequence[int],
    max_cycles: Optional[int] = None,
) -> SimulationResult:
    """Simulate a driver's workload on the given crossbar bindings.

    The one place a workload meets a fabric: program-driven and
    trace-driven replays build the same :class:`SoC` and differ only in
    where their operation streams come from and when each initiator's
    process enters the fabric.
    """
    soc = SoC(
        driver.platform,
        it_binding,
        ti_binding,
        driver.build_programs(),
        start_cycles=driver.start_cycles(),
    )
    return soc.run(max_cycles or driver.sim_cycles)
