"""Bus arbitration policies.

STbus nodes support several arbitration schemes; the three that matter
for the paper's experiments are modeled:

* ``fixed-priority`` -- lower initiator index wins (STbus "fixed" mode),
* ``round-robin`` -- rotating priority over owners (STbus "variable
  priority" flavour), stateful per bus,
* ``fifo`` -- grant in arrival order (STbus "latency-based" approximation
  with zero latency targets).

Each factory returns a fresh policy callable compatible with
:class:`repro.sim.resource.Resource`, so every bus gets independent
arbiter state.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.sim.resource import Request, fifo_policy, priority_policy

__all__ = ["make_arbiter", "ARBITRATION_POLICIES"]


def _fixed_priority_policy(pending: Sequence[Request]) -> Request:
    """Lowest owner index wins; FIFO among equal owners."""
    return min(pending, key=lambda req: (req.owner, req.arrival, req.sequence))


class _RoundRobinArbiter:
    """Rotating-priority arbitration with per-bus state.

    After granting owner ``k``, owners ``k+1, k+2, ...`` (mod the highest
    owner index seen) take precedence next time, preventing starvation of
    high-index initiators under fixed priority.
    """

    def __init__(self) -> None:
        self._last_owner = -1

    def __call__(self, pending: Sequence[Request]) -> Request:
        def rotation_key(request: Request):
            owner = request.owner if isinstance(request.owner, int) else 0
            distance = owner - self._last_owner
            if distance <= 0:
                distance += 1 << 20  # wrap: owners at/below last go last
            return (distance, request.arrival, request.sequence)

        chosen = min(pending, key=rotation_key)
        if isinstance(chosen.owner, int):
            self._last_owner = chosen.owner
        return chosen


ARBITRATION_POLICIES = ("fixed-priority", "round-robin", "fifo", "priority")


def make_arbiter(name: str) -> Callable[[Sequence[Request]], Request]:
    """Create a fresh arbitration policy instance by name."""
    if name == "fixed-priority":
        return _fixed_priority_policy
    if name == "round-robin":
        return _RoundRobinArbiter()
    if name == "fifo":
        return fifo_policy
    if name == "priority":
        return priority_policy
    raise ConfigurationError(
        f"unknown arbitration policy {name!r}; choose from {ARBITRATION_POLICIES}"
    )
