"""Transactions and the STbus timing model.

The timing model is calibrated so that an uncontended single-word read on
a full crossbar costs 6 cycles -- the full-crossbar average the paper's
Table 1 reports -- broken down as:

====================  ======  =============================================
phase                 cycles  notes
====================  ======  =============================================
request arbitration   1       registered arbiter decision
request transfer      1       address/command beat (+ payload for writes)
target service        1+      memory wait states (per-target configurable)
response arbitration  1       on the target->initiator bus
response transfer     1+      header beat (+ payload for reads)
====================  ======  =============================================

A 4-word read then costs 9 cycles uncontended, matching the paper's
full-crossbar maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.traffic.events import TraceRecord, TransactionKind

__all__ = ["TimingModel", "Transaction"]


@dataclass(frozen=True)
class TimingModel:
    """Cycle costs of the bus protocol phases.

    Attributes
    ----------
    arbitration_cycles:
        Registered-arbiter delay paid on every bus acquisition.
    header_cycles:
        Command/address beat on the request path and header beat on the
        response path.
    cycles_per_word:
        Payload beats per data word.
    """

    arbitration_cycles: int = 1
    header_cycles: int = 1
    cycles_per_word: int = 1

    def request_occupancy(self, kind: TransactionKind, burst: int, adapter=None) -> int:
        """Cycles a transaction occupies the initiator->target bus.

        ``adapter`` (an :class:`~repro.platform.adapters.AdapterConfig`)
        applies the target-side width conversion and pipeline overhead.
        """
        payload = burst * self.cycles_per_word if kind is TransactionKind.WRITE else 0
        extra = 0
        if adapter is not None:
            payload = adapter.adjust_payload(payload)
            extra = adapter.traversal_overhead()
        return self.header_cycles + payload + extra

    def response_occupancy(self, kind: TransactionKind, burst: int, adapter=None) -> int:
        """Cycles a transaction occupies the target->initiator bus.

        ``adapter`` applies the initiator-side width conversion and
        pipeline overhead.
        """
        payload = burst * self.cycles_per_word if kind is TransactionKind.READ else 0
        extra = 0
        if adapter is not None:
            payload = adapter.adjust_payload(payload)
            extra = adapter.traversal_overhead()
        return self.header_cycles + payload + extra

    def uncontended_latency(
        self, kind: TransactionKind, burst: int, service_cycles: int
    ) -> int:
        """End-to-end latency with empty buses (lower bound)."""
        return (
            2 * self.arbitration_cycles
            + self.request_occupancy(kind, burst)
            + service_cycles
            + self.response_occupancy(kind, burst)
        )


class Transaction:
    """A single in-flight bus transaction.

    Mutable during simulation: the SoC instrumentation stamps each phase
    boundary, and :meth:`to_record` freezes the result into a
    :class:`~repro.traffic.events.TraceRecord` once complete.
    """

    __slots__ = (
        "initiator",
        "target",
        "kind",
        "burst",
        "critical",
        "stream",
        "issue",
        "it_grant",
        "it_release",
        "service_start",
        "service_end",
        "ti_grant",
        "ti_release",
        "complete",
    )

    def __init__(
        self,
        initiator: int,
        target: int,
        kind: TransactionKind,
        burst: int,
        critical: bool = False,
        stream: str = "",
    ) -> None:
        if burst < 1:
            raise SimulationError(f"burst must be >= 1, got {burst}")
        self.initiator = initiator
        self.target = target
        self.kind = kind
        self.burst = burst
        self.critical = critical
        self.stream = stream
        self.issue: Optional[int] = None
        self.it_grant: Optional[int] = None
        self.it_release: Optional[int] = None
        self.service_start: Optional[int] = None
        self.service_end: Optional[int] = None
        self.ti_grant: Optional[int] = None
        self.ti_release: Optional[int] = None
        self.complete: Optional[int] = None

    @property
    def finished(self) -> bool:
        """Whether the transaction has completed all phases."""
        return self.complete is not None

    def to_record(self) -> TraceRecord:
        """Freeze a completed transaction into an immutable trace record."""
        if not self.finished:
            raise SimulationError("cannot record an unfinished transaction")
        return TraceRecord(
            initiator=self.initiator,
            target=self.target,
            kind=self.kind,
            burst=self.burst,
            issue=self.issue,
            it_grant=self.it_grant,
            it_release=self.it_release,
            service_start=self.service_start,
            service_end=self.service_end,
            ti_grant=self.ti_grant,
            ti_release=self.ti_release,
            complete=self.complete,
            critical=self.critical,
            stream=self.stream,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transaction i{self.initiator}->t{self.target} {self.kind.value} "
            f"burst={self.burst} issue={self.issue}>"
        )
