"""Latency and utilization statistics.

The paper reports *average* and *maximum* packet latency per design
(Table 1, Fig. 4); these helpers compute them (plus distribution detail)
from traces and keep the arithmetic in one audited place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.traffic.trace import TrafficTrace

__all__ = ["LatencyStats", "summarize_latencies", "per_target_latency"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (cycles)."""

    count: int
    mean: float
    maximum: int
    minimum: int
    p95: float

    @staticmethod
    def empty() -> "LatencyStats":
        """Statistics of an empty sample."""
        return LatencyStats(count=0, mean=0.0, maximum=0, minimum=0, p95=0.0)

    def relative_to(self, baseline: "LatencyStats") -> tuple:
        """(mean ratio, max ratio) against a baseline design's stats."""
        mean_ratio = self.mean / baseline.mean if baseline.mean else float("inf")
        max_ratio = (
            self.maximum / baseline.maximum if baseline.maximum else float("inf")
        )
        return mean_ratio, max_ratio

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} max={self.maximum} "
            f"p95={self.p95:.1f}"
        )


def summarize_latencies(latencies: Sequence[int]) -> LatencyStats:
    """Compute :class:`LatencyStats` over a latency sample."""
    if not len(latencies):
        return LatencyStats.empty()
    data = np.asarray(latencies)
    return LatencyStats(
        count=int(data.size),
        mean=float(data.mean()),
        maximum=int(data.max()),
        minimum=int(data.min()),
        p95=float(np.percentile(data, 95)),
    )


def per_target_latency(
    trace: TrafficTrace, critical_only: bool = False
) -> dict[int, LatencyStats]:
    """Latency statistics per destination target."""
    buckets: dict[int, list[int]] = {}
    for record in trace.records:
        if critical_only and not record.critical:
            continue
        buckets.setdefault(record.target, []).append(record.latency)
    return {
        target: summarize_latencies(sample) for target, sample in buckets.items()
    }
