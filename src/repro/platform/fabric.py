"""Crossbar fabrics built from bus bindings.

Following the paper's STbus structure (Fig. 1), a design instantiates two
crossbars:

* the **initiator->target** crossbar: every initiator can reach every
  bus; each *target* is bound to exactly one bus (``it_binding``),
* the **target->initiator** crossbar: each *initiator* is bound to one
  bus for the responses it receives (``ti_binding``).

The three STbus instantiation modes are bindings of this one structure:
a shared bus binds everything to a single bus on each side, a full
crossbar gives every target (initiator) its own bus, and a partial
crossbar is anything in between -- which is exactly what the synthesis
flow produces.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.platform.arbiter import make_arbiter
from repro.platform.bus import Bus
from repro.platform.transaction import TimingModel, Transaction
from repro.sim.engine import Engine

__all__ = [
    "Fabric",
    "full_crossbar_binding",
    "shared_bus_binding",
    "validate_binding",
]


def full_crossbar_binding(count: int) -> List[int]:
    """One dedicated bus per core: binding ``[0, 1, ..., count-1]``."""
    return list(range(count))


def shared_bus_binding(count: int) -> List[int]:
    """All cores on a single bus: binding ``[0, 0, ..., 0]``."""
    return [0] * count


def validate_binding(binding: Sequence[int], what: str) -> int:
    """Check a binding is a surjection onto ``0..max_bus`` and return the
    bus count."""
    if not binding:
        raise ConfigurationError(f"{what} binding must not be empty")
    buses = set(binding)
    if min(buses) < 0:
        raise ConfigurationError(f"{what} binding contains a negative bus index")
    bus_count = max(buses) + 1
    missing = set(range(bus_count)) - buses
    if missing:
        raise ConfigurationError(
            f"{what} binding leaves bus(es) {sorted(missing)} empty; "
            f"renumber buses densely"
        )
    return bus_count


class Fabric:
    """The pair of STbus crossbars of one design.

    Parameters
    ----------
    engine:
        Simulation engine.
    it_binding:
        Target index -> IT bus index.
    ti_binding:
        Initiator index -> TI bus index.
    timing:
        Protocol phase costs.
    arbitration:
        Arbitration policy name (fresh arbiter state per bus).
    """

    def __init__(
        self,
        engine: Engine,
        it_binding: Sequence[int],
        ti_binding: Sequence[int],
        timing: TimingModel,
        arbitration: str = "fixed-priority",
    ) -> None:
        it_buses = validate_binding(it_binding, "initiator->target")
        ti_buses = validate_binding(ti_binding, "target->initiator")
        self.it_binding = list(it_binding)
        self.ti_binding = list(ti_binding)
        self.timing = timing
        self.it_buses = [
            Bus(engine, f"it-bus{k}", make_arbiter(arbitration),
                timing.arbitration_cycles)
            for k in range(it_buses)
        ]
        self.ti_buses = [
            Bus(engine, f"ti-bus{k}", make_arbiter(arbitration),
                timing.arbitration_cycles)
            for k in range(ti_buses)
        ]

    @property
    def num_targets(self) -> int:
        """Number of targets served by the IT crossbar."""
        return len(self.it_binding)

    @property
    def num_initiators(self) -> int:
        """Number of initiators served by the TI crossbar."""
        return len(self.ti_binding)

    @property
    def bus_count(self) -> int:
        """Total buses across both crossbars (the paper's size metric)."""
        return len(self.it_buses) + len(self.ti_buses)

    def request_bus(self, transaction: Transaction) -> Bus:
        """The IT bus that carries a transaction's request phase."""
        return self.it_buses[self.it_binding[transaction.target]]

    def response_bus(self, transaction: Transaction) -> Bus:
        """The TI bus that carries a transaction's response phase."""
        return self.ti_buses[self.ti_binding[transaction.initiator]]

    def targets_on_bus(self, bus_index: int) -> List[int]:
        """Targets bound to IT bus ``bus_index``."""
        return [t for t, b in enumerate(self.it_binding) if b == bus_index]

    def initiators_on_bus(self, bus_index: int) -> List[int]:
        """Initiators bound to TI bus ``bus_index``."""
        return [i for i, b in enumerate(self.ti_binding) if b == bus_index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Fabric IT {len(self.it_buses)} buses / "
            f"TI {len(self.ti_buses)} buses>"
        )
