"""SoC assembly and simulation driver.

A :class:`SoC` wires initiators, targets and the two STbus crossbars
together, interprets each initiator's program, stamps every transaction
phase, and returns a :class:`SimulationResult` holding the traffic trace
plus fabric statistics.

Synchronization (locks, barriers) is split between *semantics* --
resolved deterministically by in-SoC managers -- and *traffic* -- the
polling reads and set/arrival writes that hit the semaphore target on
the bus, as the MPARM benchmarks do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ApplicationError, ConfigurationError, DeadlockError
from repro.platform.adapters import IDENTITY_ADAPTER, AdapterConfig
from repro.platform.fabric import Fabric
from repro.platform.initiator import (
    Barrier,
    Compute,
    Lock,
    Operation,
    Read,
    Unlock,
    Write,
)
from repro.platform.metrics import LatencyStats, summarize_latencies
from repro.platform.target import TargetConfig, TargetPort
from repro.platform.transaction import TimingModel, Transaction
from repro.sim.engine import Engine
from repro.sim.process import spawn
from repro.traffic.events import TraceRecord, TransactionKind
from repro.traffic.trace import TrafficTrace

__all__ = [
    "SoCConfig",
    "SoC",
    "SimulationResult",
    "SimulationCounter",
    "SIMULATION_COUNTER",
]


class SimulationCounter:
    """Counts fabric simulations (:meth:`SoC.run` invocations).

    Process-local, like the solver counter in
    :mod:`repro.core.instrumentation`: replay caching promises that a
    warm rerun performs *zero* fabric simulations, and that guarantee is
    only testable if the simulation entry point is observable.
    """

    def __init__(self) -> None:
        self.runs = 0

    def record(self) -> None:
        self.runs += 1

    def reset(self) -> None:
        self.runs = 0


SIMULATION_COUNTER = SimulationCounter()
"""The process-global counter every :meth:`SoC.run` reports to."""


@dataclass(frozen=True)
class SoCConfig:
    """Static platform description, independent of the crossbar chosen.

    Attributes
    ----------
    initiator_names:
        One name per initiator (e.g. ``["arm0", ..., "arm8"]``).
    targets:
        One :class:`~repro.platform.target.TargetConfig` per target.
    timing:
        Bus protocol phase costs.
    arbitration:
        Arbitration policy name used by every bus.
    initiator_adapters / target_adapters:
        Optional per-core interface adapters (sparse maps by index).
    seed:
        Seed for the small amount of polling jitter; fixed seed gives
        bit-identical reruns.
    """

    initiator_names: Sequence[str]
    targets: Sequence[TargetConfig]
    timing: TimingModel = TimingModel()
    arbitration: str = "fixed-priority"
    initiator_adapters: Dict[int, AdapterConfig] = field(default_factory=dict)
    target_adapters: Dict[int, AdapterConfig] = field(default_factory=dict)
    seed: int = 1

    @property
    def num_initiators(self) -> int:
        return len(self.initiator_names)

    @property
    def num_targets(self) -> int:
        return len(self.targets)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistencies."""
        if not self.initiator_names or not self.targets:
            raise ConfigurationError("SoC needs at least one initiator and target")
        for index in self.initiator_adapters:
            if not 0 <= index < self.num_initiators:
                raise ConfigurationError(f"adapter for unknown initiator {index}")
        for index in self.target_adapters:
            if not 0 <= index < self.num_targets:
                raise ConfigurationError(f"adapter for unknown target {index}")


@dataclass
class SimulationResult:
    """Outcome of one SoC simulation."""

    trace: TrafficTrace
    simulated_cycles: int
    finished: bool
    it_bus_count: int
    ti_bus_count: int
    it_utilization: List[float]
    ti_utilization: List[float]

    @property
    def bus_count(self) -> int:
        """Total buses across both crossbars (paper's size metric)."""
        return self.it_bus_count + self.ti_bus_count

    def latency_stats(self, critical_only: bool = False) -> LatencyStats:
        """Packet latency statistics over the simulated transactions."""
        samples = [
            record.latency
            for record in self.trace.records
            if record.critical or not critical_only
        ]
        return summarize_latencies(samples)


class SoC:
    """A simulatable MPSoC instance: platform + crossbar + programs.

    Parameters
    ----------
    config:
        Platform description (cores, timing, arbitration).
    it_binding / ti_binding:
        Crossbar shape: target -> IT bus and initiator -> TI bus.
    programs:
        One operation iterable per initiator. Any workload can drive the
        fabric this way -- live application programs or replayed trace
        records (see :mod:`repro.platform.drivers`).
    start_cycles:
        Optional per-initiator start offsets: initiator ``k`` enters the
        fabric at absolute cycle ``start_cycles[k]`` instead of cycle 0.
        Trace-driven replay uses this to schedule each initiator at its
        first recorded issue cycle.
    """

    def __init__(
        self,
        config: SoCConfig,
        it_binding: Sequence[int],
        ti_binding: Sequence[int],
        programs: Sequence[Iterable[Operation]],
        start_cycles: Optional[Sequence[int]] = None,
    ) -> None:
        config.validate()
        if len(it_binding) != config.num_targets:
            raise ConfigurationError(
                f"it_binding covers {len(it_binding)} targets, platform has "
                f"{config.num_targets}"
            )
        if len(ti_binding) != config.num_initiators:
            raise ConfigurationError(
                f"ti_binding covers {len(ti_binding)} initiators, platform "
                f"has {config.num_initiators}"
            )
        if len(programs) != config.num_initiators:
            raise ConfigurationError(
                f"{len(programs)} programs for {config.num_initiators} initiators"
            )
        if start_cycles is not None:
            if len(start_cycles) != config.num_initiators:
                raise ConfigurationError(
                    f"{len(start_cycles)} start offsets for "
                    f"{config.num_initiators} initiators"
                )
            if any(start < 0 for start in start_cycles):
                raise ConfigurationError("start_cycles must be non-negative")
        self._start_cycles = list(start_cycles) if start_cycles is not None else None
        self.config = config
        self.engine = Engine()
        self.fabric = Fabric(
            self.engine, it_binding, ti_binding, config.timing, config.arbitration
        )
        self.ports = [TargetPort(self.engine, target) for target in config.targets]
        self._programs = list(programs)
        self._records: List[TraceRecord] = []
        self._locks = _LockManager()
        self._barriers = _BarrierManager()
        self._processes = []

    # -- simulation -----------------------------------------------------------

    def run(self, max_cycles: int) -> SimulationResult:
        """Simulate until all programs finish or ``max_cycles`` elapse."""
        if max_cycles < 1:
            raise ConfigurationError(f"max_cycles must be >= 1, got {max_cycles}")
        SIMULATION_COUNTER.record()
        self._processes = [
            spawn(
                self.engine,
                self._interpret(index, iter(program)),
                name=self.config.initiator_names[index],
                start_at=(
                    None if self._start_cycles is None
                    else self._start_cycles[index]
                ),
            )
            for index, program in enumerate(self._programs)
        ]
        self.engine.run(until=max_cycles)
        finished = all(process.finished for process in self._processes)
        if not finished and self.engine.pending_events == 0:
            stuck = [p.name for p in self._processes if not p.finished]
            raise DeadlockError(
                f"simulation deadlocked at cycle {self.engine.now}; "
                f"stuck initiators: {stuck}"
            )
        total_cycles = max(self.engine.now, 1)
        trace = TrafficTrace(
            self._records,
            num_initiators=self.config.num_initiators,
            num_targets=self.config.num_targets,
            total_cycles=total_cycles,
            target_names=[target.name for target in self.config.targets],
            initiator_names=list(self.config.initiator_names),
        )
        return SimulationResult(
            trace=trace,
            simulated_cycles=total_cycles,
            finished=finished,
            it_bus_count=len(self.fabric.it_buses),
            ti_bus_count=len(self.fabric.ti_buses),
            it_utilization=[
                bus.utilization(total_cycles) for bus in self.fabric.it_buses
            ],
            ti_utilization=[
                bus.utilization(total_cycles) for bus in self.fabric.ti_buses
            ],
        )

    # -- program interpretation -------------------------------------------------

    def _interpret(self, index: int, program):
        """Process generator: execute one initiator's operation stream."""
        jitter = random.Random((self.config.seed << 16) ^ index)
        for op in program:
            if isinstance(op, Compute):
                if op.cycles:
                    yield op.cycles
            elif isinstance(op, (Read, Write)):
                yield from self._access(index, op)
            elif isinstance(op, Lock):
                yield from self._acquire_lock(index, op, jitter)
            elif isinstance(op, Unlock):
                self._locks.release((op.semaphore, op.lock_id), index)
                yield from self._access(
                    index,
                    Write(op.semaphore, 1, stream=f"unlock{op.lock_id}"),
                )
            elif isinstance(op, Barrier):
                yield from self._wait_barrier(index, op, jitter)
            else:
                raise ApplicationError(
                    f"initiator {index} produced unsupported operation {op!r}"
                )

    def _acquire_lock(self, index: int, op: Lock, jitter: random.Random):
        key = (op.semaphore, op.lock_id)
        while True:
            yield from self._access(
                index, Read(op.semaphore, 1, stream=f"lock{op.lock_id}")
            )
            if self._locks.try_acquire(key, index):
                yield from self._access(
                    index, Write(op.semaphore, 1, stream=f"lock{op.lock_id}")
                )
                return
            yield op.poll_cycles + jitter.randrange(4)

    def _wait_barrier(self, index: int, op: Barrier, jitter: random.Random):
        key = (op.semaphore, op.barrier_id)
        generation = self._barriers.arrive(key, op.participants)
        yield from self._access(
            index, Write(op.semaphore, 1, stream=f"barrier{op.barrier_id}")
        )
        while not self._barriers.released(key, generation):
            yield op.poll_cycles + jitter.randrange(8)
            yield from self._access(
                index, Read(op.semaphore, 1, stream=f"barrier{op.barrier_id}")
            )

    def _access(self, index: int, op):
        """Drive one transaction through request, service and response."""
        kind = TransactionKind.READ if isinstance(op, Read) else TransactionKind.WRITE
        target_config = self.config.targets[op.target]
        transaction = Transaction(
            initiator=index,
            target=op.target,
            kind=kind,
            burst=op.burst,
            critical=op.critical or target_config.critical,
            stream=op.stream
            or f"{self.config.initiator_names[index]}->{target_config.name}",
        )
        timing = self.config.timing
        target_adapter = self.config.target_adapters.get(op.target, IDENTITY_ADAPTER)
        initiator_adapter = self.config.initiator_adapters.get(
            index, IDENTITY_ADAPTER
        )
        transaction.issue = self.engine.now

        request_bus = self.fabric.request_bus(transaction)
        grant, release = yield from request_bus.transfer(
            index, timing.request_occupancy(kind, op.burst, target_adapter)
        )
        transaction.it_grant, transaction.it_release = grant, release

        start, end = yield from self.ports[op.target].serve()
        transaction.service_start, transaction.service_end = start, end

        response_bus = self.fabric.response_bus(transaction)
        grant, release = yield from response_bus.transfer(
            op.target, timing.response_occupancy(kind, op.burst, initiator_adapter)
        )
        transaction.ti_grant, transaction.ti_release = grant, release
        transaction.complete = self.engine.now
        self._records.append(transaction.to_record())


class _LockManager:
    """Deterministic lock-semantics arbiter (traffic handled by the SoC)."""

    def __init__(self) -> None:
        self._owners: Dict[Tuple[int, int], Optional[int]] = {}

    def try_acquire(self, key: Tuple[int, int], owner: int) -> bool:
        if self._owners.get(key) is None:
            self._owners[key] = owner
            return True
        return False

    def release(self, key: Tuple[int, int], owner: int) -> None:
        if self._owners.get(key) != owner:
            raise ApplicationError(
                f"initiator {owner} released lock {key} it does not hold"
            )
        self._owners[key] = None


class _BarrierManager:
    """Generation-counting barrier semantics."""

    def __init__(self) -> None:
        self._state: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def arrive(self, key: Tuple[int, int], participants: int) -> int:
        if participants < 1:
            raise ApplicationError(f"barrier {key} needs >= 1 participants")
        generation, arrived = self._state.get(key, (0, 0))
        arrived += 1
        if arrived >= participants:
            self._state[key] = (generation + 1, 0)
        else:
            self._state[key] = (generation, arrived)
        return generation

    def released(self, key: Tuple[int, int], generation: int) -> bool:
        current, _arrived = self._state.get(key, (0, 0))
        return current > generation
