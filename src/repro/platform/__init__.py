"""STbus MPSoC platform model (MPARM/SystemC stand-in).

An event-driven, cycle-resolved model of an STbus-interconnected MPSoC:

* :mod:`~repro.platform.transaction` -- transactions and the bus timing
  model (request/service/response phase costs),
* :mod:`~repro.platform.arbiter` -- per-bus arbitration policies,
* :mod:`~repro.platform.bus` -- a single STbus bus (grant, occupancy),
* :mod:`~repro.platform.fabric` -- shared-bus / partial- / full-crossbar
  fabrics built from target->bus and initiator->bus bindings,
* :mod:`~repro.platform.target` -- memory, semaphore and interrupt-device
  targets,
* :mod:`~repro.platform.initiator` -- programmable initiators and the
  workload operation vocabulary (compute, read, write, lock, barrier),
* :mod:`~repro.platform.drivers` -- pluggable workload drivers: the
  program-driven initiator path and trace-driven replay
  (:class:`~repro.platform.drivers.TraceDrivenInitiator`),
* :mod:`~repro.platform.adapters` -- frequency/data-width adapters,
* :mod:`~repro.platform.soc` -- SoC assembly, simulation driver and trace
  instrumentation,
* :mod:`~repro.platform.metrics` -- latency and utilization statistics.

The fabric follows the paper's STbus structure: *two* crossbars per
design, one for initiator->target requests (targets bound to buses, all
initiators reach every bus) and one for target->initiator responses
(initiators bound to buses). A shared-bus design is the special case of
one bus on each side; a full crossbar has one bus per target / initiator.
"""

from repro.platform.transaction import TimingModel, Transaction
from repro.platform.arbiter import make_arbiter, ARBITRATION_POLICIES
from repro.platform.bus import Bus
from repro.platform.fabric import (
    Fabric,
    full_crossbar_binding,
    shared_bus_binding,
    validate_binding,
)
from repro.platform.target import TargetConfig, TargetKind
from repro.platform.initiator import (
    Barrier,
    Compute,
    Lock,
    Read,
    Unlock,
    Write,
    trace_replay_program,
)
from repro.platform.soc import (
    SIMULATION_COUNTER,
    SimulationCounter,
    SimulationResult,
    SoC,
    SoCConfig,
)
from repro.platform.drivers import (
    ProgramDriver,
    TraceDrivenInitiator,
    WorkloadDriver,
    platform_spec,
    replay_platform,
    simulate_workload,
)
from repro.platform.metrics import LatencyStats, summarize_latencies

__all__ = [
    "TimingModel",
    "Transaction",
    "make_arbiter",
    "ARBITRATION_POLICIES",
    "Bus",
    "Fabric",
    "full_crossbar_binding",
    "shared_bus_binding",
    "validate_binding",
    "TargetConfig",
    "TargetKind",
    "Compute",
    "Read",
    "Write",
    "Lock",
    "Unlock",
    "Barrier",
    "trace_replay_program",
    "SoC",
    "SoCConfig",
    "SimulationResult",
    "SimulationCounter",
    "SIMULATION_COUNTER",
    "WorkloadDriver",
    "ProgramDriver",
    "TraceDrivenInitiator",
    "replay_platform",
    "platform_spec",
    "simulate_workload",
    "LatencyStats",
    "summarize_latencies",
]
