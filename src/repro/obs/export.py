"""Span export: JSONL, Chrome ``trace_event`` JSON, indented summary.

Three consumers, three formats:

* **JSONL** -- one span object per line; the interchange format the
  ``repro trace`` CLI reads back and the ``--trace FILE`` capture
  writes (same shape as the worker spool files).
* **Chrome trace events** -- complete ``ph: "X"`` duration events with
  microsecond timestamps, loadable in ``chrome://tracing`` or
  `Perfetto <https://ui.perfetto.dev>`_; pool workers show up as
  separate process tracks automatically because events carry real
  pids.
* **Indented table** -- the terminal view: the span tree by parent
  links, one row per span with wall/CPU time and attributes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.tracing import Span

__all__ = [
    "write_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "format_span_tree",
]


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write spans as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def load_jsonl(path: str) -> List[Span]:
    """Read spans back from a JSONL file (unparseable lines raise --
    an export file, unlike a worker spool, is expected to be whole)."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def to_chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """Spans as a Chrome ``trace_event`` document.

    Timestamps and durations are microseconds (the format's unit);
    trace/span/parent ids ride along in ``args`` so a Perfetto query
    can still reconstruct the tree.
    """
    events = []
    for span in sorted(spans, key=lambda s: (s.t_start, s.span_id)):
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["cpu_ms"] = round(span.cpu_s * 1e3, 3)
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.t_start * 1e6, 1),
                "dur": round(span.wall_s * 1e6, 1),
                "pid": span.pid,
                "tid": span.tid,
                "cat": "repro",
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path: str) -> int:
    """Write the Chrome trace document; returns the event count."""
    document = to_chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
    return len(document["traceEvents"])


def _format_attrs(attrs: Dict[str, Any]) -> str:
    return " ".join(
        f"{key}={value}" for key, value in sorted(attrs.items())
    )


def format_span_tree(
    spans: Sequence[Span], trace_id: Optional[str] = None
) -> str:
    """Render spans as an indented table, one row per span.

    Children indent under their parent; spans whose parent is missing
    (a worker span whose fan-out context was not captured, or a
    filtered trace) render as roots. Sibling order is start time.
    """
    items = list(spans)
    if trace_id is not None:
        items = [s for s in items if s.trace_id == trace_id]
    if not items:
        return "(no spans)"
    by_id = {s.span_id: s for s in items}
    children: Dict[Optional[str], List[Span]] = {}
    for span in items:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.t_start, s.span_id))

    name_width = max(
        (len(s.name) + 2 * _depth(s, by_id) for s in items), default=4
    )
    name_width = max(name_width, len("span"))
    lines = [
        f"  {'span':<{name_width}} {'wall ms':>10} {'cpu ms':>10} "
        f"{'pid':>7}  attrs"
    ]

    def _emit(span: Span, depth: int) -> None:
        label = "  " * depth + span.name
        lines.append(
            f"  {label:<{name_width}} {span.wall_s * 1e3:>10.2f} "
            f"{span.cpu_s * 1e3:>10.2f} {span.pid:>7}  "
            f"{_format_attrs(span.attrs)}".rstrip()
        )
        for child in children.get(span.span_id, []):
            _emit(child, depth + 1)

    for root in children.get(None, []):
        _emit(root, 0)
    return "\n".join(lines)


def _depth(span: Span, by_id: Dict[str, Span]) -> int:
    depth = 0
    seen = {span.span_id}
    current = span
    while current.parent_id in by_id and current.parent_id not in seen:
        seen.add(current.parent_id)
        current = by_id[current.parent_id]
        depth += 1
    return depth
