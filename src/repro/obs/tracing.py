"""Span tracing with cross-process propagation.

A **span** is one timed region of work -- a pipeline stage, a solver
call, a pool-worker task -- with a name, wall + CPU durations, free-form
attributes, and links: every span carries a ``trace_id`` (the tree it
belongs to) and a ``parent_id`` (the span that was open when it
started). ``span("pipeline.window", windows=3)`` opens one as a context
manager; nesting follows the call stack via a :mod:`contextvars`
variable, so instrumented layers compose without passing handles.

Cross-process propagation works exactly like
:mod:`repro.resilience.faults`: the engine wraps pool fan-out in
:func:`propagate_context`, which exports the current trace/span ids and
a **spool directory** to the ``REPRO_TRACE`` environment variable. Pool
workers -- inherited state under ``fork``, lazy env read under
``spawn`` -- resolve that context on their first span and append
finished spans to a per-pid JSONL spool file. :func:`collect_spans`
merges the parent's in-memory collector with the spool files (dedup by
span id, so a task retried after a pool rebuild appears once per
*attempt*, not once per read), which is how a job's trace tree spans
processes.

Two properties are load-bearing:

* **Zero-cost when disabled.** :func:`span` with tracing off returns a
  shared no-op object after two module-global reads; no allocation, no
  clock reads, no lock.
* **Determinism safety.** Span and trace ids come from
  :func:`os.urandom` (never the seeded RNGs the synthesis math uses),
  spans never feed fingerprints or report payloads, and nothing here
  writes to stdout -- the chaos suite's byte-identical guarantees hold
  with tracing armed.
"""

from __future__ import annotations

import contextvars
import json
import os
import tempfile
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "TRACE_ENV_VAR",
    "Span",
    "TraceCollector",
    "arm_tracing",
    "disarm_tracing",
    "tracing_enabled",
    "span",
    "root_span",
    "current_span",
    "propagate_context",
    "collect_spans",
    "clear_spans",
    "spool_directory",
]

TRACE_ENV_VAR = "REPRO_TRACE"

_SPOOL_PREFIX = "spans-"


def _new_id(nbytes: int) -> str:
    # os.urandom: ids must never touch the seeded RNGs the synthesis
    # math depends on, or tracing would perturb deterministic runs.
    return os.urandom(nbytes).hex()


@dataclass
class Span:
    """One finished (or in-flight) timed region of work."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    t_start: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    pid: int = 0
    tid: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "t_start": self.t_start,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            t_start=float(payload.get("t_start", 0.0)),
            wall_s=float(payload.get("wall_s", 0.0)),
            cpu_s=float(payload.get("cpu_s", 0.0)),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            attrs=dict(payload.get("attrs", {})),
        )


class TraceCollector:
    """Bounded, thread-safe sink for finished spans (parent process)."""

    def __init__(self, maxlen: int = 50_000) -> None:
        self._lock = threading.Lock()
        self._spans: "deque[Span]" = deque(maxlen=maxlen)
        self.dropped = 0

    def add(self, span_: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span_)

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            items = list(self._spans)
        if trace_id is not None:
            items = [s for s in items if s.trace_id == trace_id]
        return items

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


@dataclass
class _TraceState:
    """Resolved tracing configuration for *this* process."""

    pid: int
    spool_dir: str
    worker: bool
    owns_spool: bool
    context_trace_id: Optional[str] = None
    context_parent_id: Optional[str] = None
    collector: Optional[TraceCollector] = None

    def emit(self, span_: Span) -> None:
        if self.worker:
            # One JSON line per finished span; O_APPEND keeps concurrent
            # workers' lines whole. Spool write failures are swallowed:
            # observability must never fail the work it observes.
            try:
                path = os.path.join(
                    self.spool_dir, f"{_SPOOL_PREFIX}{self.pid}.jsonl"
                )
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(span_.to_dict()) + "\n")
            except OSError:
                pass
        elif self.collector is not None:
            self.collector.add(span_)


# ``None`` when tracing is off; resolution is lazy (first span in a
# spawn worker reads REPRO_TRACE), and a state whose pid is not ours
# means we are a fork child that must re-resolve for itself.
_STATE: Optional[_TraceState] = None
_RESOLVED = False
_STATE_LOCK = threading.Lock()

_CURRENT: "contextvars.ContextVar[Optional[_LiveSpan]]" = (
    contextvars.ContextVar("repro_obs_current_span", default=None)
)


def _resolve_state() -> Optional[_TraceState]:
    global _STATE, _RESOLVED
    with _STATE_LOCK:
        pid = os.getpid()
        if _RESOLVED and _STATE is not None and _STATE.pid == pid:
            return _STATE
        if _RESOLVED and _STATE is None:
            return None
        # First consultation in this process (or a fork child that
        # inherited another pid's state): resolve from the environment.
        spec = os.environ.get(TRACE_ENV_VAR)
        if spec:
            try:
                context = json.loads(spec)
                _STATE = _TraceState(
                    pid=pid,
                    spool_dir=str(context["spool_dir"]),
                    worker=True,
                    owns_spool=False,
                    context_trace_id=context.get("trace_id"),
                    context_parent_id=context.get("parent_id"),
                )
            except (ValueError, KeyError, TypeError):
                _STATE = None
        else:
            _STATE = None
        _RESOLVED = True
        return _STATE


def _current_state() -> Optional[_TraceState]:
    state = _STATE
    if _RESOLVED:
        if state is None:
            return None
        if state.pid == os.getpid():
            return state
    return _resolve_state()


def arm_tracing(
    spool_dir: Optional[str] = None, maxlen: int = 50_000
) -> TraceCollector:
    """Enable span collection in this process.

    ``spool_dir`` is where pool workers will append their spans (a
    fresh temporary directory when omitted, removed again by
    :func:`disarm_tracing`). Returns the in-process collector.
    """
    global _STATE, _RESOLVED
    with _STATE_LOCK:
        owns = spool_dir is None
        if spool_dir is None:
            spool_dir = tempfile.mkdtemp(prefix="repro-trace-")
        else:
            os.makedirs(spool_dir, exist_ok=True)
        collector = TraceCollector(maxlen=maxlen)
        _STATE = _TraceState(
            pid=os.getpid(),
            spool_dir=spool_dir,
            worker=False,
            owns_spool=owns,
            collector=collector,
        )
        _RESOLVED = True
        return collector


def disarm_tracing() -> None:
    """Disable tracing and clean up an owned spool directory."""
    global _STATE, _RESOLVED
    with _STATE_LOCK:
        state = _STATE
        _STATE = None
        _RESOLVED = True
        os.environ.pop(TRACE_ENV_VAR, None)
    if state is not None and state.owns_spool and not state.worker:
        try:
            for entry in os.listdir(state.spool_dir):
                os.unlink(os.path.join(state.spool_dir, entry))
            os.rmdir(state.spool_dir)
        except OSError:
            pass


def tracing_enabled() -> bool:
    """Whether spans are being recorded in this process."""
    return _current_state() is not None


def spool_directory() -> Optional[str]:
    """The active spool directory, if tracing is armed."""
    state = _current_state()
    return state.spool_dir if state is not None else None


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    trace_id = ""
    span_id = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set_attr(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span: clock bookkeeping plus the parent link."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "_state",
        "_token",
        "_t_start",
        "_t0_wall",
        "_t0_cpu",
    )

    def __init__(
        self,
        state: _TraceState,
        name: str,
        attrs: Dict[str, Any],
        new_trace: bool = False,
    ) -> None:
        self._state = state
        self.name = name
        self.attrs = attrs
        parent = None if new_trace else _CURRENT.get()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        elif not new_trace and state.context_trace_id:
            # Worker mode: parent under the fan-out site that exported
            # REPRO_TRACE, so task spans reach the job root.
            self.trace_id = state.context_trace_id
            self.parent_id = state.context_parent_id
        else:
            self.trace_id = _new_id(16)
            self.parent_id = None
        self.span_id = _new_id(8)
        self._token = None
        self._t_start = 0.0
        self._t0_wall = 0.0
        self._t0_cpu = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._token = _CURRENT.set(self)
        self._t_start = time.time()
        self._t0_wall = time.perf_counter()
        self._t0_cpu = time.process_time()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        wall = time.perf_counter() - self._t0_wall
        cpu = time.process_time() - self._t0_cpu
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._state.emit(
            Span(
                name=self.name,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                t_start=self._t_start,
                wall_s=wall,
                cpu_s=cpu,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
            )
        )

    def set_attr(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


def span(name: str, **attrs: Any):
    """Open a span named ``name`` as a context manager.

    Nested use parents to the innermost open span on this thread; with
    tracing disabled this returns a shared no-op object (the fast path
    is two module-global reads).
    """
    if _RESOLVED and _STATE is None:
        return _NULL_SPAN
    state = _current_state()
    if state is None:
        return _NULL_SPAN
    return _LiveSpan(state, name, attrs)


def root_span(name: str, **attrs: Any):
    """Open a span that starts a *new* trace (a job root), ignoring any
    span currently open on this thread."""
    state = _current_state()
    if state is None:
        return _NULL_SPAN
    return _LiveSpan(state, name, attrs, new_trace=True)


def current_span():
    """The innermost open span on this thread (``None`` when outside
    any span or tracing is disabled)."""
    if _RESOLVED and _STATE is None:
        return None
    return _CURRENT.get()


@contextmanager
def propagate_context() -> Iterator[None]:
    """Export the current span context to ``REPRO_TRACE`` for the
    duration of the block.

    The engine wraps pool creation + fan-out in this, so workers --
    including pools rebuilt mid-job by the recovery ladder -- inherit
    the job's trace and spool their spans under it. No-op when tracing
    is disabled or in a worker (the inherited context already points at
    the right parent).

    The export is process-global state, like ``REPRO_FAULTS``: two
    *concurrent* fan-outs from different jobs would race on the env
    var, and the loser's worker spans parent under the winner's span
    (still the correct trace for coalesced work, and never lost -- the
    spool directory is shared). Per-job env isolation is not worth the
    complexity while pools are created per sweep.
    """
    state = _current_state()
    if state is None or state.worker:
        yield
        return
    current = _CURRENT.get()
    context = {
        "spool_dir": state.spool_dir,
        "trace_id": current.trace_id if current is not None else None,
        "parent_id": current.span_id if current is not None else None,
    }
    previous = os.environ.get(TRACE_ENV_VAR)
    os.environ[TRACE_ENV_VAR] = json.dumps(context)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(TRACE_ENV_VAR, None)
        else:
            os.environ[TRACE_ENV_VAR] = previous


def collect_spans(trace_id: Optional[str] = None) -> List[Span]:
    """Every recorded span, merged across processes.

    Combines the in-process collector with the spool files workers
    appended to, deduplicates by span id (a spool file is re-read on
    every call), optionally filters to one trace, and sorts by start
    time. Unparseable spool lines (a worker killed mid-write) are
    skipped -- a torn span must not hide the rest of the tree.
    """
    state = _current_state()
    if state is None:
        return []
    spans: List[Span] = []
    if state.collector is not None:
        spans.extend(state.collector.spans())
    try:
        entries = sorted(os.listdir(state.spool_dir))
    except OSError:
        entries = []
    for entry in entries:
        if not entry.startswith(_SPOOL_PREFIX):
            continue
        path = os.path.join(state.spool_dir, entry)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        spans.append(Span.from_dict(json.loads(line)))
                    except (ValueError, KeyError, TypeError):
                        continue
        except OSError:
            continue
    seen: Dict[str, Span] = {}
    for item in spans:
        seen.setdefault(item.span_id, item)
    merged = list(seen.values())
    if trace_id is not None:
        merged = [s for s in merged if s.trace_id == trace_id]
    merged.sort(key=lambda s: (s.t_start, s.span_id))
    return merged


def clear_spans() -> None:
    """Drop every collected span and spool file (test isolation)."""
    state = _current_state()
    if state is None:
        return
    if state.collector is not None:
        state.collector.clear()
    try:
        for entry in os.listdir(state.spool_dir):
            if entry.startswith(_SPOOL_PREFIX):
                try:
                    os.unlink(os.path.join(state.spool_dir, entry))
                except OSError:
                    pass
    except OSError:
        pass
