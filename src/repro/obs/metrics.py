"""Unified metrics registry: counters, gauges, histograms with labels.

One process-global :data:`REGISTRY` absorbs every ad-hoc tally the
platform grew -- solver invocation counts, pipeline stage hit/miss
tables, cache statistics, engine degradation events, fault-injection
tallies, server dispositions and HTTP latencies -- behind a single
thread-safe API, and renders them as `Prometheus text exposition
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ for
the daemon's ``GET /metrics`` endpoint.

Design constraints, in order:

* **Thread safety** -- one registry lock serializes child creation and
  :meth:`MetricsRegistry.snapshot`; each child value update takes the
  same lock, so a snapshot is a *consistent* cut across every metric
  (the ``/v1/stats`` endpoint reads tallies through it instead of
  field-by-field racing the writers).
* **Cheap hot path** -- recording into an already-created child is one
  lock acquisition and one float add; call sites that record per
  solver *node* batch locally and record once per solve.
* **Determinism safety** -- metrics are observability-only: nothing
  here feeds content fingerprints, cache keys or report payloads, so
  arming the registry can never perturb a byte-identical guarantee.

Counters are monotonic for the life of the process (Prometheus
semantics); the legacy resettable views (``SOLVE_COUNTER``,
``PhaseTimer``) keep their own reset logic *on top of* the registry.
:meth:`MetricsRegistry.reset` exists for test isolation only.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render_prometheus",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)
"""Histogram bucket upper bounds in seconds (latency-oriented)."""


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(
    labelnames: Sequence[str], labelvalues: Sequence[str], extra: str = ""
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Base of one named metric family (all children share it)."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _child_key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def collect(self) -> Dict[Tuple[str, ...], Any]:
        """A consistent copy of every child's value."""
        with self._lock:
            return dict(self._children)

    def _reset(self) -> None:
        with self._lock:
            self._children.clear()


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._child_key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._child_key(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return float(sum(self._children.values()))

    def _render(self) -> List[str]:
        lines = []
        for key, value in sorted(self.collect().items()):
            suffix = _label_suffix(self.labelnames, key)
            lines.append(f"{self.name}{suffix} {_format_value(value)}")
        if not lines and not self.labelnames:
            lines.append(f"{self.name} 0")
        return lines


class Gauge(_Metric):
    """A value that can go up and down; supports callback children.

    ``set_function`` registers a callable sampled at collection time --
    the queue-depth/active-jobs pattern, where the authoritative value
    already lives in another structure and mirroring every transition
    would be both racy and redundant.
    """

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._child_key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._child_key(labels)
        with self._lock:
            current = self._children.get(key, 0.0)
            if callable(current):
                raise ValueError(
                    f"gauge child {self.name}{key} is callback-backed"
                )
            self._children[key] = current + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn, **labels: Any) -> None:
        """Back this child with ``fn`` (``None`` unregisters it)."""
        key = self._child_key(labels)
        with self._lock:
            if fn is None:
                self._children.pop(key, None)
            else:
                self._children[key] = fn

    def value(self, **labels: Any) -> float:
        key = self._child_key(labels)
        with self._lock:
            current = self._children.get(key, 0.0)
        return float(current() if callable(current) else current)

    def _render(self) -> List[str]:
        lines = []
        for key, value in sorted(self.collect().items()):
            if callable(value):
                try:
                    value = float(value())
                except Exception:  # noqa: BLE001 - sampling must not 500
                    continue
            suffix = _label_suffix(self.labelnames, key)
            lines.append(f"{self.name}{suffix} {_format_value(value)}")
        if not lines and not self.labelnames:
            lines.append(f"{self.name} 0")
        return lines


class _HistogramChild:
    """Bucket counts + sum/count for one label combination."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus classic semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be sorted and unique")
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._child_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _HistogramChild(len(self.buckets))
                self._children[key] = child
            child.total += float(value)
            child.count += 1
            # Per-bucket (non-cumulative) storage; _render cumsums.
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    child.counts[index] += 1
                    break

    def child_stats(self, **labels: Any) -> Tuple[int, float]:
        """(count, sum) for one label combination (0, 0.0 when unseen)."""
        key = self._child_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                return 0, 0.0
            return child.count, child.total

    def _render(self) -> List[str]:
        lines = []
        for key, child in sorted(self.collect().items()):
            cumulative = 0
            for bound, count in zip(self.buckets, child.counts):
                cumulative += count
                le = _label_suffix(
                    self.labelnames, key, f'le="{_format_value(bound)}"'
                )
                lines.append(f"{self.name}_bucket{le} {cumulative}")
            inf = _label_suffix(self.labelnames, key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{inf} {child.count}")
            suffix = _label_suffix(self.labelnames, key)
            lines.append(
                f"{self.name}_sum{suffix} {_format_value(child.total)}"
            )
            lines.append(f"{self.name}_count{suffix} {child.count}")
        return lines


class MetricsRegistry:
    """Thread-safe, name-addressed collection of metric families.

    ``counter``/``gauge``/``histogram`` get-or-create: instrumented
    modules declare their metrics at import or call time, and repeated
    declarations with matching type and labels return the same family
    (mismatches raise -- they are wiring bugs, not data).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: "Dict[str, _Metric]" = {}

    def _declare(self, cls, name, help_text, labelnames, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._declare(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """One consistent cut across every registered metric.

        Counters/gauges map label tuples to floats; histograms map them
        to ``{"count": n, "sum": s}``. Taken under the registry lock, so
        no writer can interleave between two families -- this is the
        atomic view ``/v1/stats`` reads tallies through.
        """
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {}
            for name, metric in self._metrics.items():
                samples: Dict[Tuple[str, ...], Any] = {}
                for key, value in metric._children.items():
                    if isinstance(value, _HistogramChild):
                        samples[key] = {"count": value.count, "sum": value.total}
                    elif callable(value):
                        try:
                            samples[key] = float(value())
                        except Exception:  # noqa: BLE001
                            continue
                    else:
                        samples[key] = float(value)
                out[name] = {
                    "kind": metric.kind,
                    "labelnames": metric.labelnames,
                    "samples": samples,
                }
            return out

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format 0.0.4."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n"

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero every child (optionally only families named with
        ``prefix``). Test isolation only -- production counters are
        monotonic for the life of the process."""
        with self._lock:
            for name, metric in self._metrics.items():
                if prefix is None or name.startswith(prefix):
                    metric._reset()


REGISTRY = MetricsRegistry()
"""The process-global registry every instrumented layer reports into."""


def counter(
    name: str, help_text: str = "", labelnames: Sequence[str] = ()
) -> Counter:
    """Get-or-create a counter on the global :data:`REGISTRY`."""
    return REGISTRY.counter(name, help_text, labelnames)


def gauge(
    name: str, help_text: str = "", labelnames: Sequence[str] = ()
) -> Gauge:
    """Get-or-create a gauge on the global :data:`REGISTRY`."""
    return REGISTRY.gauge(name, help_text, labelnames)


def histogram(
    name: str,
    help_text: str = "",
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram on the global :data:`REGISTRY`."""
    return REGISTRY.histogram(name, help_text, labelnames, buckets=buckets)


def render_prometheus() -> str:
    """Text exposition of the global :data:`REGISTRY` (``GET /metrics``)."""
    return REGISTRY.render_prometheus()
