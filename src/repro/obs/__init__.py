"""``repro.obs`` -- the platform's unified observability layer.

One package replaces five ad-hoc mechanisms (``PhaseTimer``,
``SOLVE_COUNTER``, ``EngineStats``, ``StageCounters``, hand-rolled
``/v1/stats`` dicts):

* :mod:`repro.obs.metrics` -- a thread-safe registry of counters,
  gauges and histograms with label sets, rendered as Prometheus text
  exposition for ``GET /metrics``.
* :mod:`repro.obs.tracing` -- spans with trace/span ids, wall + CPU
  durations and parent links, propagated into pool workers via the
  ``REPRO_TRACE`` environment variable so one job's trace tree spans
  processes.
* :mod:`repro.obs.export` -- spans as JSONL, Chrome ``trace_event``
  JSON (Perfetto-loadable) or an indented terminal table.
* :mod:`repro.obs.jsonlog` -- structured JSON-lines logging for
  ``repro serve --log-json``.

The package imports only the standard library, sitting below every
other ``repro`` subpackage (like :mod:`repro.profiling`, which is now a
shim over it) so any layer can instrument itself without import cycles.
"""

from repro.obs.export import (
    format_span_tree,
    load_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.jsonlog import JsonLogger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
    render_prometheus,
)
from repro.obs.tracing import (
    TRACE_ENV_VAR,
    Span,
    TraceCollector,
    arm_tracing,
    clear_spans,
    collect_spans,
    current_span,
    disarm_tracing,
    propagate_context,
    root_span,
    span,
    spool_directory,
    tracing_enabled,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render_prometheus",
    # tracing
    "TRACE_ENV_VAR",
    "Span",
    "TraceCollector",
    "arm_tracing",
    "disarm_tracing",
    "tracing_enabled",
    "span",
    "root_span",
    "current_span",
    "propagate_context",
    "collect_spans",
    "clear_spans",
    "spool_directory",
    # export
    "write_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "format_span_tree",
    # logging
    "JsonLogger",
]
