"""Structured (JSON-lines) logging for the serve daemon.

``repro serve --log-json`` swaps the daemon's human-oriented stderr
lines for one JSON object per event -- request handled, job state
transition -- so a log pipeline can filter on fields (job id,
fingerprint, disposition, duration, trace id) instead of regexing
prose. Plain text stays the default; this module is inert unless a
:class:`JsonLogger` is constructed and handed to the server.

Events go to **stderr** (like the text logs they replace): stdout is
reserved for report payloads whose byte-identity the chaos suite
asserts, so structured logging can never perturb a deterministic run.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, IO, Optional

__all__ = ["JsonLogger"]


class JsonLogger:
    """Thread-safe one-object-per-line JSON event logger."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line; unserializable values are stringified
        and write failures swallowed (logging must not fail the
        request it logs)."""
        payload = {"event": event, "ts": round(time.time(), 6)}
        payload.update(fields)
        try:
            line = json.dumps(payload, sort_keys=True, default=str)
        except (TypeError, ValueError):
            line = json.dumps(
                {"event": event, "ts": payload["ts"], "error": "unserializable"}
            )
        try:
            with self._lock:
                self._stream.write(line + "\n")
                self._stream.flush()
        except (OSError, ValueError):
            pass
