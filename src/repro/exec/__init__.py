"""Sweep/synthesis execution engine: parallel fan-out + result caching.

The paper's design-space studies solve many independent synthesis
points. This package turns those studies from serial, recompute-
everything loops into cached, parallel executions:

* :mod:`~repro.exec.engine` -- the :class:`ExecutionEngine` (process-
  pool fan-out with deterministic ordering, serial fallback),
* :mod:`~repro.exec.cache` -- the content-addressed on-disk
  :class:`ResultCache`,
* :mod:`~repro.exec.fingerprint` -- canonical hashing of traces,
  configurations and tasks,
* :mod:`~repro.exec.serialize` -- the JSON-portable
  :class:`SynthesisResult` record shared by the cache, the CLI and the
  report layer.

Contracts
---------
* **Content addressing.** A solved point is keyed by
  :func:`~repro.exec.fingerprint.task_key` -- a canonical SHA-256 over
  (trace fingerprint, full synthesis configuration, window,
  application name), schema-versioned via
  :data:`~repro.exec.fingerprint.CACHE_SCHEMA_VERSION`. A changed
  input can never alias a cached result.
* **Caching.** Whole results persist as ``<key>.json`` entries in the
  :class:`ResultCache` directory (shared with the pipeline's per-stage
  entries; one ``prune``/``usage`` covers both). Writes are atomic,
  corrupt entries degrade to misses, hits refresh mtime so pruning is
  true LRU, and the cache is safe under concurrent threads and
  processes.
* **Determinism.** ``jobs=N`` fan-out returns results byte-identical
  to a serial run, in task order, whichever path (pool, serial
  fallback, cache) each point took.
"""

from repro.exec.cache import CacheStats, CacheUsage, ResultCache
from repro.exec.engine import (
    EvaluationOutcome,
    ExecutionEngine,
    ReplayOutcome,
    ReplayTask,
    StaleWorkerTraceError,
    SynthesisTask,
)
from repro.exec.fingerprint import (
    CACHE_SCHEMA_VERSION,
    config_fingerprint,
    task_key,
    trace_fingerprint,
)
from repro.exec.serialize import (
    SynthesisResult,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "ExecutionEngine",
    "SynthesisTask",
    "EvaluationOutcome",
    "ReplayTask",
    "ReplayOutcome",
    "ResultCache",
    "CacheStats",
    "CacheUsage",
    "StaleWorkerTraceError",
    "SynthesisResult",
    "result_to_dict",
    "result_from_dict",
    "trace_fingerprint",
    "config_fingerprint",
    "task_key",
    "CACHE_SCHEMA_VERSION",
]
