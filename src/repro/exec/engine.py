"""Parallel, cached execution of synthesis and evaluation points.

The design-space studies are embarrassingly parallel: every sweep point
is an independent synthesis run over the same trace. The
:class:`ExecutionEngine` exploits that twice over:

* **Caching** -- each point is keyed by a content hash of (trace,
  configuration, window); solved points are stored in a
  :class:`~repro.exec.cache.ResultCache` and never recomputed, across
  runs and across processes.
* **Parallelism** -- uncached points fan out over a process pool. The
  shared trace is shipped to each worker once (via the pool
  initializer), not once per point. Results are returned in task order
  regardless of completion order, so parallel runs are byte-identical
  to serial ones.

The pool is an optimization, never a requirement: pool infrastructure
failures (fork unavailable, a crashed worker, a stale worker trace) are
absorbed by a bounded recovery ladder -- per-task retries with capped
backoff, then one pool rebuild, then serial execution for whatever
remains -- governed by a :class:`~repro.resilience.RetryPolicy` and
counted in :class:`~repro.resilience.EngineStats` so degradation is
observable (``/v1/stats``) rather than silent. ``jobs=1`` bypasses the
pool entirely. Whatever path a task takes, its result is identical:
the chaos suite asserts byte-identical reports under injected worker
crashes (``repro.resilience`` fault point ``worker.crash``).

Every point is solved through the staged pipeline
(:mod:`repro.pipeline`): the engine hands the task to
:class:`~repro.core.synthesis.CrossbarSynthesizer`, which composes
collect/window/conflict/bind stages over the process-shared artifact
store. Sweep points over one trace therefore share the collection and
windowing artifacts (a threshold sweep re-windows nothing), both in the
serial path and within each pool worker.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.spec import SynthesisConfig
from repro.core.synthesis import CrossbarSynthesizer
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.fingerprint import task_key, trace_fingerprint
from repro.exec.serialize import SynthesisResult
from repro.obs import tracing as _tracing
from repro.pipeline import shm as _shm
from repro.resilience import EngineStats, RetryPolicy, maybe_crash_worker
from repro.platform.drivers import TraceDrivenInitiator, simulate_workload
from repro.platform.metrics import LatencyStats
from repro.platform.soc import SoCConfig
from repro.traffic.kernels import warm_analytics
from repro.traffic.trace import TrafficTrace

__all__ = [
    "SynthesisTask",
    "EvaluationOutcome",
    "ReplayTask",
    "ReplayOutcome",
    "ExecutionEngine",
    "StaleWorkerTraceError",
    "preferred_mp_context",
]


@dataclass(frozen=True)
class SynthesisTask:
    """One independent synthesis point of a sweep.

    ``window_size`` is the *effective* window (already clamped to the
    trace length by the caller); ``config`` carries every other knob.
    """

    config: SynthesisConfig
    window_size: int

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ConfigurationError(
                f"task window_size must be >= 1, got {self.window_size}"
            )


@dataclass(frozen=True)
class EvaluationOutcome:
    """One design's simulated behaviour, as returned by pool workers."""

    label: str
    bus_count: int
    stats: LatencyStats
    critical_stats: LatencyStats
    finished: bool


@dataclass(frozen=True)
class ReplayTask:
    """One latency-replay simulation: a workload on a candidate fabric.

    Replay tasks are *portable* workload descriptions -- everything a
    pool worker needs to rebuild the driver on its side:

    * trace-driven -- ``trace`` (the recorded workload) plus an optional
      ``platform`` (defaults to the generic replay platform derived from
      the trace's shape);
    * program-driven -- ``app_name`` + ``app_params``, rebuilt through
      the application registry (builders are deterministic, so the
      rebuilt programs match the parent's exactly).
    """

    it_binding: Tuple[int, ...]
    ti_binding: Tuple[int, ...]
    budget: int
    trace: Optional[TrafficTrace] = None
    platform: Optional[SoCConfig] = None
    app_name: Optional[str] = None
    app_params: Tuple[Tuple[str, object], ...] = ()
    pace: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if (self.trace is None) == (self.app_name is None):
            raise ConfigurationError(
                "a replay task carries exactly one workload: a recorded "
                "trace or an application name"
            )
        if self.budget < 1:
            raise ConfigurationError(f"replay budget must be >= 1, got {self.budget}")


@dataclass(frozen=True)
class ReplayOutcome:
    """One replay's simulated behaviour, as returned by pool workers."""

    label: str
    stats: LatencyStats
    critical_stats: LatencyStats
    finished: bool
    num_transactions: int
    simulated_cycles: int


def _run_replay_task(task: ReplayTask) -> ReplayOutcome:
    """Execute one replay task (serial path and pool workers alike)."""
    if task.trace is not None:
        driver = TraceDrivenInitiator(
            task.trace, config=task.platform, pace=task.pace, label=task.label
        )
    else:
        from repro.apps import build_application

        driver = build_application(task.app_name, **dict(task.app_params)).driver()
    result = simulate_workload(
        driver, list(task.it_binding), list(task.ti_binding), task.budget
    )
    return ReplayOutcome(
        label=task.label,
        stats=result.latency_stats(),
        critical_stats=result.latency_stats(critical_only=True),
        finished=result.finished,
        num_transactions=len(result.trace),
        simulated_cycles=result.simulated_cycles,
    )


def _replay_in_worker(
    index: int, task: ReplayTask, attempt: int = 0
) -> Tuple[int, ReplayOutcome]:
    maybe_crash_worker(f"{index}:a{attempt}")
    # Worker spans resolve their trace context lazily from REPRO_TRACE
    # (exported by the parent's propagate_context around the fan-out)
    # and spool to disk, so the job's tree spans processes. A crashed
    # worker writes no span; the surviving retry's attempt appears.
    with _tracing.span("worker.replay", index=index, attempt=attempt):
        return index, _run_replay_task(task)


class StaleWorkerTraceError(RuntimeError):
    """A pool worker held a trace other than the sweep's.

    Raised (and transported back to the parent) when a task's expected
    trace fingerprint does not match the worker's installed trace --
    the reused-pool leak this check exists to catch. The engine treats
    it like any pool infrastructure failure: degrade to the serial
    path, which always solves against the right trace.
    """


# Worker-process state: the sweep's shared trace, installed once per
# worker by the pool initializer instead of being pickled per task, and
# its content fingerprint, verified per task. The engine currently
# builds a fresh pool per sweep, so a mismatch indicates module-global
# leakage (a worker inheriting state under ``fork``, or future pool
# reuse across sweeps); the verification turns that silent wrong-trace
# solve into a loud refusal the engine degrades from.
_WORKER_TRACE: Optional[TrafficTrace] = None
_WORKER_TRACE_DIGEST: Optional[str] = None


def _install_worker_trace(
    trace: TrafficTrace, digest: Optional[str] = None
) -> None:
    global _WORKER_TRACE, _WORKER_TRACE_DIGEST
    _WORKER_TRACE = trace
    _WORKER_TRACE_DIGEST = digest if digest is not None else trace_fingerprint(trace)
    # The parent warms the columnar analytics before spawning the pool,
    # so under ``fork`` (and via the pickled initargs under ``spawn``)
    # the compiled form arrives pre-built; this call is then a no-op,
    # and otherwise guarantees one compilation per worker, not per task.
    warm_analytics(trace)
    # Likewise attach any published stage segments once per worker (the
    # REPRO_SHM manifest exported around the fan-out), not per task;
    # attach failures degrade per segment and cost nothing later.
    _shm.attach_from_env()


def _solve_task_in_worker(
    index: int, task: SynthesisTask, expected_digest: str, attempt: int = 0
) -> Tuple[int, SynthesisResult]:
    # Fault keys carry the attempt number, so a plan matching ``*:a0``
    # kills the first attempt and lets the retry through -- the chaos
    # suite's "crash once, recover" scenario.
    maybe_crash_worker(f"{index}:a{attempt}")
    if _WORKER_TRACE is None:
        raise StaleWorkerTraceError("pool initializer did not run")
    if _WORKER_TRACE_DIGEST != expected_digest:
        raise StaleWorkerTraceError(
            f"worker holds trace {_WORKER_TRACE_DIGEST!r} but the task "
            f"expects {expected_digest!r}; refusing to solve against a "
            f"stale trace"
        )
    with _tracing.span(
        "worker.solve",
        index=index,
        attempt=attempt,
        window=task.window_size,
    ):
        return index, _solve_task(_WORKER_TRACE, task)


def _solve_task(trace: TrafficTrace, task: SynthesisTask) -> SynthesisResult:
    report = CrossbarSynthesizer(task.config).design_from_trace(
        trace, task.window_size
    )
    return SynthesisResult.from_report(report)


def _solve_batch_item(
    index: int, trace: TrafficTrace, task: SynthesisTask, attempt: int = 0
) -> Tuple[int, SynthesisResult]:
    """Pool entry point for batch items, which carry their own trace."""
    maybe_crash_worker(f"{index}:a{attempt}")
    with _tracing.span(
        "worker.solve",
        index=index,
        attempt=attempt,
        window=task.window_size,
    ):
        warm_analytics(trace)
        return index, _solve_task(trace, task)


def _simulate_outcome(
    application,
    it_binding,
    ti_binding,
    label: str,
    bus_count: int,
    budget: int,
) -> EvaluationOutcome:
    """The one place an evaluation simulation becomes an outcome (both
    the serial and the pool-worker path go through it)."""
    result = application.simulate(list(it_binding), list(ti_binding), budget)
    return EvaluationOutcome(
        label=label,
        bus_count=bus_count,
        stats=result.latency_stats(),
        critical_stats=result.latency_stats(critical_only=True),
        finished=result.finished,
    )


def _evaluate_in_worker(
    index: int,
    registry_key: str,
    it_binding: Tuple[int, ...],
    ti_binding: Tuple[int, ...],
    label: str,
    bus_count: int,
    budget: int,
    attempt: int = 0,
) -> Tuple[int, EvaluationOutcome]:
    maybe_crash_worker(f"{index}:a{attempt}")
    from repro.apps import build_application

    with _tracing.span("worker.evaluate", index=index, attempt=attempt):
        application = build_application(registry_key)
        return index, _simulate_outcome(
            application, it_binding, ti_binding, label, bus_count, budget
        )


def preferred_mp_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap model/trace hand-off) where the OS offers it.

    Shared by the engine's worker pools and the MILP racing portfolio
    (:mod:`repro.milp.portfolio`), so every process the platform spawns
    follows one start-method policy.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


_pool_context = preferred_mp_context


class ExecutionEngine:
    """Fans synthesis/evaluation points out over workers, behind a cache.

    Parameters
    ----------
    jobs:
        Worker-process count. ``1`` (the default) runs everything
        in-process; ``0`` or ``None`` means one worker per CPU.
    cache:
        A :class:`ResultCache`, a cache-directory path, or ``None`` to
        disable caching.
    retry:
        A :class:`~repro.resilience.RetryPolicy` bounding fault
        recovery (defaults to one per-task retry + one pool rebuild).
    stats:
        An :class:`~repro.resilience.EngineStats` to tally recovery
        events into; one is created when not supplied, and
        :meth:`scoped` engines share their parent's instance.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Union[ResultCache, str, Path, None] = None,
        retry: Optional[RetryPolicy] = None,
        stats: Optional[EngineStats] = None,
    ) -> None:
        if jobs is None or jobs == 0:
            jobs = multiprocessing.cpu_count()
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = stats if stats is not None else EngineStats()

    def scoped(self, jobs: Optional[int] = None) -> "ExecutionEngine":
        """A job-scoped engine sharing this engine's cache instance.

        The ``repro serve`` daemon executes every accepted job on its
        own engine -- each job gets its own pool fan-out (bounded by the
        server's per-job ``jobs`` setting) and fails independently --
        while all jobs read and write *one* :class:`ResultCache`
        instance, so hit/miss statistics aggregate server-wide and two
        jobs never hold divergent views of the same cache directory.
        The retry policy and degradation stats are shared the same way,
        so ``/v1/stats`` reports recovery activity across all jobs.

        ``jobs=None`` inherits this engine's worker count.
        """
        return ExecutionEngine(
            jobs=self.jobs if jobs is None else jobs,
            cache=self.cache,
            retry=self.retry,
            stats=self.stats,
        )

    # -- fault-tolerant pool fan-out ----------------------------------

    def _pool_map(
        self,
        count: int,
        make_pool: Callable[[], ProcessPoolExecutor],
        submit_one: Callable[[ProcessPoolExecutor, int, int], "Future"],
        serial_one: Callable[[int], object],
    ) -> List[object]:
        """Run ``count`` indexed tasks on a pool, absorbing pool faults.

        The recovery ladder, bounded by :attr:`retry`:

        1. a failed task is retried (``task_retries`` times), in the
           existing pool when it is healthy or in a rebuilt one;
        2. a broken pool is torn down and rebuilt at most
           ``pool_rebuilds`` times, with capped exponential backoff;
        3. whatever still fails past those budgets runs serially
           in-process -- per task, not per batch.

        Task-level *application* errors (a solver raising on a bad
        formulation) are not recovery candidates: they propagate
        unchanged, exactly as on the serial path. Only pool
        infrastructure faults -- :class:`BrokenProcessPool`,
        :class:`OSError`, :class:`StaleWorkerTraceError` -- climb the
        ladder, and every rung taken is recorded in :attr:`stats`.

        The whole ladder runs inside one ``engine.pool_map`` span with
        the trace context exported to ``REPRO_TRACE``
        (:func:`repro.obs.propagate_context`) and the shared stage
        plane's segment manifest exported to ``REPRO_SHM``
        (:func:`repro.pipeline.shm.propagate_plane`): the initial pool
        *and* any pool rebuilt mid-batch inherit the same parent span
        and the same published tensors, so a job's trace tree -- and
        its zero-copy window lookups -- survive worker crashes.
        """
        with _tracing.span("engine.pool_map", tasks=count):
            with _tracing.propagate_context():
                with _shm.propagate_plane():
                    return self._pool_map_impl(
                        count, make_pool, submit_one, serial_one
                    )

    def _pool_map_impl(
        self,
        count: int,
        make_pool: Callable[[], ProcessPoolExecutor],
        submit_one: Callable[[ProcessPoolExecutor, int, int], "Future"],
        serial_one: Callable[[int], object],
    ) -> List[object]:
        results: Dict[int, object] = {}
        attempts = {index: 0 for index in range(count)}

        def run_serially(indices: Sequence[int]) -> None:
            self.stats.record_serial_fallback(len(indices))
            for index in indices:
                results[index] = serial_one(index)

        try:
            pool = make_pool()
        except OSError:
            run_serially(range(count))
            return [results[index] for index in range(count)]

        rebuilds = 0
        pending = list(range(count))
        try:
            while pending:
                futures = [
                    (index, submit_one(pool, index, attempts[index]))
                    for index in pending
                ]
                failed: List[int] = []
                pool_broken = False
                for index, future in futures:
                    try:
                        returned_index, result = future.result()
                        results[returned_index] = result
                    except StaleWorkerTraceError:
                        failed.append(index)
                    except (BrokenProcessPool, OSError):
                        pool_broken = True
                        failed.append(index)

                retryable = [
                    index
                    for index in failed
                    if attempts[index] < self.retry.task_retries
                ]
                exhausted = [
                    index
                    for index in failed
                    if attempts[index] >= self.retry.task_retries
                ]
                if retryable:
                    for index in retryable:
                        attempts[index] += 1
                    self.stats.record_task_retry(len(retryable))
                if exhausted:
                    run_serially(exhausted)

                if pool_broken:
                    pool.shutdown(wait=True, cancel_futures=True)
                    pool = None
                    if retryable:
                        if rebuilds < self.retry.pool_rebuilds:
                            time.sleep(self.retry.backoff_for(rebuilds))
                            rebuilds += 1
                            self.stats.record_pool_rebuild()
                            try:
                                pool = make_pool()
                            except OSError:
                                run_serially(retryable)
                                retryable = []
                        else:
                            run_serially(retryable)
                            retryable = []
                pending = retryable
        finally:
            # wait=True: an abandoned manager thread races the
            # interpreter's atexit hooks ("Bad file descriptor" noise on
            # process exit); joining it is cheap even for a broken pool,
            # whose dead workers make shutdown return immediately.
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        return [results[index] for index in range(count)]

    # -- synthesis ----------------------------------------------------

    def synthesize(
        self,
        trace: TrafficTrace,
        config: Optional[SynthesisConfig] = None,
        window_size: Optional[int] = None,
        application: Optional[str] = None,
        trace_digest: Optional[str] = None,
    ) -> SynthesisResult:
        """Solve (or fetch) a single synthesis point."""
        config = config or SynthesisConfig()
        window = window_size or config.window_size or 1_000
        task = SynthesisTask(config=config, window_size=window)
        return self.run_sweep(
            trace, [task], application=application, trace_digest=trace_digest
        )[0]

    def run_sweep(
        self,
        trace: TrafficTrace,
        tasks: Sequence[SynthesisTask],
        application: Optional[str] = None,
        trace_digest: Optional[str] = None,
    ) -> List[SynthesisResult]:
        """Solve every task against ``trace``; results in task order.

        Cached points are returned without any solver work; the
        remainder is fanned out over the pool (or solved serially for
        ``jobs=1``). The returned list is ordered and valued identically
        whichever path each point took.
        """
        results: List[Optional[SynthesisResult]] = [None] * len(tasks)
        pending: List[Tuple[int, Optional[str], SynthesisTask]] = []
        if self.cache is not None and trace_digest is None:
            trace_digest = trace_fingerprint(trace)
        for index, task in enumerate(tasks):
            key = None
            if self.cache is not None:
                key = task_key(
                    trace_digest, task.config, task.window_size, application
                )
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            pending.append((index, key, task))

        if pending:
            # Identical points (e.g. several windows clamped to the trace
            # length) share one solve; every pending slot maps onto it.
            distinct: List[SynthesisTask] = []
            slot: Dict[SynthesisTask, int] = {}
            for _index, _key, task in pending:
                if task not in slot:
                    slot[task] = len(distinct)
                    distinct.append(task)
            solved = self._solve_pending(trace, distinct)
            stored = set()
            for index, key, task in pending:
                result = solved[slot[task]]
                results[index] = result
                if self.cache is not None and key is not None and key not in stored:
                    self.cache.put(key, result)
                    stored.add(key)
        return results  # type: ignore[return-value]

    def _solve_pending(
        self, trace: TrafficTrace, tasks: Sequence[SynthesisTask]
    ) -> List[SynthesisResult]:
        # Compile the trace's columnar analytics (both crossbar sides)
        # once, before any point is solved: the serial path reuses it
        # across every task, and pool workers inherit it instead of
        # compiling per sweep point.
        with _tracing.span("engine.sweep", tasks=len(tasks)):
            warm_analytics(trace)
            if self.jobs > 1 and len(tasks) > 1:
                return self._solve_parallel(trace, tasks)
            return [_solve_task(trace, task) for task in tasks]

    @staticmethod
    def _prewindow_shared(
        trace: TrafficTrace, tasks: Sequence[SynthesisTask]
    ) -> None:
        """Window specs shared by >= 2 pending tasks are analyzed once
        in the parent and offered to the shared stage plane before
        fan-out, so every worker resolves them zero-copy (a published
        segment, or the parent's artifact itself under ``fork``)
        instead of re-windowing the trace per worker.

        Specs used by a single task are left to their worker: windowing
        them here would serialize exactly the work the pool exists to
        spread. Strictly an accelerator -- any failure falls through to
        the normal per-worker path.
        """
        if not _shm.enabled():
            return
        sample: Dict[Tuple, SynthesisTask] = {}
        counts: Dict[Tuple, int] = {}
        for task in tasks:
            # The fields window_stage_spec() reads; tasks differing only
            # in solver/threshold knobs share their window fingerprints.
            key = (
                task.window_size,
                task.config.variable_windows,
                task.config.variable_window_ratio,
            )
            sample.setdefault(key, task)
            counts[key] = counts.get(key, 0) + 1
        shared = [sample[key] for key, count in counts.items() if count >= 2]
        if not shared:
            return
        from repro.pipeline.runner import shared_runner

        runner = shared_runner()
        try:
            collected = runner.collect(trace)
            for task in shared:
                for mirrored in (False, True):
                    runner.window(
                        collected, task.config, task.window_size, mirrored
                    )
        except Exception:  # noqa: BLE001 - accelerator only: the real
            # solve path (worker or serial) surfaces any genuine error.
            return

    def _solve_parallel(
        self, trace: TrafficTrace, tasks: Sequence[SynthesisTask]
    ) -> List[SynthesisResult]:
        workers = min(self.jobs, len(tasks))
        digest = trace_fingerprint(trace)
        self._prewindow_shared(trace, tasks)

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_pool_context(),
                initializer=_install_worker_trace,
                initargs=(trace, digest),
            )

        def submit_one(pool: ProcessPoolExecutor, index: int, attempt: int):
            return pool.submit(
                _solve_task_in_worker, index, tasks[index], digest, attempt
            )

        def serial_one(index: int) -> SynthesisResult:
            return _solve_task(trace, tasks[index])

        return self._pool_map(len(tasks), make_pool, submit_one, serial_one)

    # -- batches (one task per trace) ---------------------------------

    def run_batch(
        self,
        items: Sequence[Tuple[TrafficTrace, SynthesisTask]],
        applications: Optional[Sequence[Optional[str]]] = None,
    ) -> List[SynthesisResult]:
        """Solve one synthesis point per (trace, task) pair, in order.

        Where :meth:`run_sweep` fans many tasks out over *one* shared
        trace, a batch fans out over many traces -- the scenario-suite
        pattern: each suite member contributes its own trace and its own
        analysis window. Caching works exactly as for sweeps (each item
        is keyed by its trace's fingerprint), identical items share one
        solve, and pool failures degrade to the serial path, so batch
        results are deterministic whatever the job count.

        ``applications`` optionally tags each item's cache key with a
        stable source name (e.g. the scenario name), preventing
        collisions between same-shaped traces from different builders.
        """
        if applications is None:
            applications = [None] * len(items)
        if len(applications) != len(items):
            raise ConfigurationError(
                f"{len(applications)} application tags for {len(items)} items"
            )
        results: List[Optional[SynthesisResult]] = [None] * len(items)
        pending: List[Tuple[int, Optional[str]]] = []
        for index, ((trace, task), application) in enumerate(zip(items, applications)):
            key = None
            if self.cache is not None:
                key = task_key(
                    trace_fingerprint(trace),
                    task.config,
                    task.window_size,
                    application,
                )
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            pending.append((index, key))

        if pending:
            # Items with identical content (same trace fingerprint and
            # task) share one solve, keyed by the cache key when a cache
            # is active and by identity otherwise.
            distinct: List[Tuple[TrafficTrace, SynthesisTask]] = []
            slot: Dict[Tuple[str, SynthesisTask], int] = {}
            placement: List[int] = []
            for index, _key in pending:
                trace, task = items[index]
                ident = (trace_fingerprint(trace), task)
                if ident not in slot:
                    slot[ident] = len(distinct)
                    distinct.append(items[index])
                placement.append(slot[ident])
            solved = self._solve_batch(distinct)
            stored = set()
            for (index, key), position in zip(pending, placement):
                result = solved[position]
                results[index] = result
                if self.cache is not None and key is not None and key not in stored:
                    self.cache.put(key, result)
                    stored.add(key)
        return results  # type: ignore[return-value]

    def _solve_batch(
        self, items: Sequence[Tuple[TrafficTrace, SynthesisTask]]
    ) -> List[SynthesisResult]:
        with _tracing.span("engine.batch", items=len(items)):
            if self.jobs > 1 and len(items) > 1:
                return self._solve_batch_parallel(items)
            results = []
            for trace, task in items:
                warm_analytics(trace)
                results.append(_solve_task(trace, task))
            return results

    def _solve_batch_parallel(
        self, items: Sequence[Tuple[TrafficTrace, SynthesisTask]]
    ) -> List[SynthesisResult]:
        workers = min(self.jobs, len(items))

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            )

        def submit_one(pool: ProcessPoolExecutor, index: int, attempt: int):
            trace, task = items[index]
            return pool.submit(_solve_batch_item, index, trace, task, attempt)

        def serial_one(index: int) -> SynthesisResult:
            trace, task = items[index]
            warm_analytics(trace)
            return _solve_task(trace, task)

        return self._pool_map(len(items), make_pool, submit_one, serial_one)

    # -- latency replays ----------------------------------------------

    def run_replay_batch(self, tasks: Sequence[ReplayTask]) -> List[ReplayOutcome]:
        """Simulate every replay task, in task order.

        The scenario-suite pattern again: each suite member contributes
        one workload (a recorded trace or a program source) to replay on
        the shared candidate fabric. Tasks fan out over the pool --
        replay simulations are independent and each task is a portable
        workload description -- and any pool infrastructure failure
        degrades to the serial path, so outcomes are deterministic
        whatever the job count. Caching lives one layer up, in the
        pipeline's replay stage (the engine is handed only the misses).
        """
        with _tracing.span("engine.replay", tasks=len(tasks)):
            if self.jobs > 1 and len(tasks) > 1:
                return self._run_replays_parallel(tasks)
            return [_run_replay_task(task) for task in tasks]

    def _run_replays_parallel(self, tasks: Sequence[ReplayTask]) -> List[ReplayOutcome]:
        workers = min(self.jobs, len(tasks))

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            )

        def submit_one(pool: ProcessPoolExecutor, index: int, attempt: int):
            return pool.submit(_replay_in_worker, index, tasks[index], attempt)

        def serial_one(index: int) -> ReplayOutcome:
            return _run_replay_task(tasks[index])

        return self._pool_map(len(tasks), make_pool, submit_one, serial_one)

    # -- evaluation ---------------------------------------------------

    def evaluate_designs(
        self,
        application,
        designs: Sequence,
        budget: int,
    ) -> List[EvaluationOutcome]:
        """Simulate ``application`` on every design, in design order.

        Parallel execution rebuilds the application in each worker
        (program iterators are closures and do not pickle), which is
        only faithful for applications tagged with a ``registry_key``
        (default registry builds); customized or hand-built
        applications always run serially.
        """
        with _tracing.span("engine.evaluate", designs=len(designs)):
            if (
                self.jobs > 1
                and len(designs) > 1
                and getattr(application, "registry_key", None) is not None
            ):
                return self._evaluate_parallel(application, designs, budget)
            return [
                _simulate_outcome(
                    application,
                    design.it.as_list(),
                    design.ti.as_list(),
                    design.label,
                    design.bus_count,
                    budget,
                )
                for design in designs
            ]

    def _evaluate_parallel(
        self, application, designs: Sequence, budget: int
    ) -> List[EvaluationOutcome]:
        workers = min(self.jobs, len(designs))

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            )

        def submit_one(pool: ProcessPoolExecutor, index: int, attempt: int):
            design = designs[index]
            return pool.submit(
                _evaluate_in_worker,
                index,
                application.registry_key,
                tuple(design.it.binding),
                tuple(design.ti.binding),
                design.label,
                design.bus_count,
                budget,
                attempt,
            )

        def serial_one(index: int) -> EvaluationOutcome:
            design = designs[index]
            return _simulate_outcome(
                application,
                design.it.as_list(),
                design.ti.as_list(),
                design.label,
                design.bus_count,
                budget,
            )

        return self._pool_map(len(designs), make_pool, submit_one, serial_one)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cache = self.cache.cache_dir if self.cache is not None else None
        return f"<ExecutionEngine jobs={self.jobs} cache={cache}>"
