"""The portable synthesis-result record and its JSON codec.

A :class:`SynthesisResult` is the flyweight counterpart of
:class:`~repro.core.synthesis.SynthesisReport`: it keeps everything a
downstream consumer (cache, CLI, reports, sweeps) needs -- the designed
bindings, the effective window, the configuration and the search
diagnostics -- while dropping the heavyweight in-memory artifacts
(problem matrices, conflict graphs, the trace itself). That makes it
cheap to pickle across pool workers and exact to round-trip through
JSON, which is what the on-disk cache stores.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict

from repro.core.spec import BusBinding, CrossbarDesign, SynthesisConfig
from repro.errors import ReproError

__all__ = ["SynthesisResult", "result_to_dict", "result_from_dict"]

RESULT_FORMAT = "repro-result-v1"


@dataclass(frozen=True)
class SynthesisResult:
    """One solved synthesis point, in serializable form.

    Attributes
    ----------
    design:
        Both crossbar bindings.
    window_size:
        Effective analysis window the point was solved with.
    config:
        The full synthesis configuration (including the nominal window,
        which may differ from ``window_size`` when the trace was shorter
        than the requested window).
    it_conflicts / ti_conflicts:
        Conflict-pair counts per crossbar side (pre-processing output).
    it_probes / ti_probes:
        Binary-search trajectory per side: candidate bus count ->
        feasibility verdict.
    """

    design: CrossbarDesign
    window_size: int
    config: SynthesisConfig
    it_conflicts: int = 0
    ti_conflicts: int = 0
    it_probes: Dict[int, bool] = None  # type: ignore[assignment]
    ti_probes: Dict[int, bool] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.it_probes is None:
            object.__setattr__(self, "it_probes", {})
        if self.ti_probes is None:
            object.__setattr__(self, "ti_probes", {})

    @property
    def bus_count(self) -> int:
        """Total buses across both crossbars."""
        return self.design.bus_count

    @classmethod
    def from_report(cls, report) -> "SynthesisResult":
        """Distill a full :class:`SynthesisReport` into a result."""
        return cls(
            design=report.design,
            window_size=report.it_report.problem.window_size,
            config=report.config,
            it_conflicts=report.it_report.conflicts.num_conflicts,
            ti_conflicts=report.ti_report.conflicts.num_conflicts,
            it_probes=dict(report.it_report.search.probes),
            ti_probes=dict(report.ti_report.search.probes),
        )


def _binding_to_dict(binding: BusBinding) -> Dict[str, Any]:
    return {
        "binding": list(binding.binding),
        "num_buses": binding.num_buses,
        "max_bus_overlap": binding.max_bus_overlap,
        "optimal": binding.optimal,
    }


def _binding_from_dict(payload: Dict[str, Any]) -> BusBinding:
    return BusBinding(
        binding=tuple(payload["binding"]),
        num_buses=int(payload["num_buses"]),
        max_bus_overlap=int(payload["max_bus_overlap"]),
        optimal=bool(payload["optimal"]),
    )


def result_to_dict(result: SynthesisResult) -> Dict[str, Any]:
    """Encode a result as a JSON-ready dictionary."""
    return {
        "format": RESULT_FORMAT,
        "window_size": result.window_size,
        "config": asdict(result.config),
        "design": {
            "label": result.design.label,
            "it": _binding_to_dict(result.design.it),
            "ti": _binding_to_dict(result.design.ti),
        },
        "diagnostics": {
            "it_conflicts": result.it_conflicts,
            "ti_conflicts": result.ti_conflicts,
            "it_probes": {str(k): v for k, v in result.it_probes.items()},
            "ti_probes": {str(k): v for k, v in result.ti_probes.items()},
        },
    }


def result_from_dict(payload: Dict[str, Any]) -> SynthesisResult:
    """Decode a dictionary produced by :func:`result_to_dict`.

    Raises :class:`~repro.errors.ReproError` on version or shape
    mismatch, so stale cache entries are reported (and skipped by the
    cache) instead of crashing a sweep.
    """
    if not isinstance(payload, dict):
        raise ReproError(f"result payload must be an object, got {type(payload)}")
    if payload.get("format") != RESULT_FORMAT:
        raise ReproError(
            f"unsupported result format {payload.get('format')!r} "
            f"(expected {RESULT_FORMAT!r})"
        )
    try:
        design_payload = payload["design"]
        diagnostics = payload.get("diagnostics", {})
        design = CrossbarDesign(
            it=_binding_from_dict(design_payload["it"]),
            ti=_binding_from_dict(design_payload["ti"]),
            label=design_payload.get("label", "windowed"),
        )
        return SynthesisResult(
            design=design,
            window_size=int(payload["window_size"]),
            config=SynthesisConfig(**payload["config"]),
            it_conflicts=int(diagnostics.get("it_conflicts", 0)),
            ti_conflicts=int(diagnostics.get("ti_conflicts", 0)),
            it_probes={
                int(k): bool(v)
                for k, v in diagnostics.get("it_probes", {}).items()
            },
            ti_probes={
                int(k): bool(v)
                for k, v in diagnostics.get("ti_probes", {}).items()
            },
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed synthesis result payload: {exc}") from exc
