"""Content-addressed on-disk result cache.

Each entry is stored as ``<key>.json`` under the cache directory. Two
entry families share the directory:

* **whole-result entries** (:meth:`ResultCache.get` / ``put``) -- one
  solved synthesis point per entry, keyed by
  :func:`~repro.exec.fingerprint.task_key`;
* **per-stage entries** (:meth:`ResultCache.get_json` / ``put_json``) --
  generic JSON payloads keyed by pipeline stage fingerprints (see
  :mod:`repro.pipeline.store`), so intermediate artifacts persist at
  stage granularity, not only end to end.

Writes are atomic (temp file + ``os.replace``) so concurrent sweeps
sharing a cache directory never observe torn entries; corrupt or
stale-format entries are treated as misses and rewritten. Hits touch
the entry's mtime, making :meth:`ResultCache.prune` a true
least-recently-used eviction.

The cache is safe under concurrent access from threads *and* unrelated
processes: the maintenance walks (:meth:`ResultCache.usage`,
:meth:`ResultCache.prune`, :meth:`ResultCache.clear`) tolerate entries
vanishing mid-iteration (an in-flight ``put_json`` landing, a
concurrent prune winning the unlink -- ``FileNotFoundError`` on
stat/unlink skips the entry), and the in-process hit/miss statistics
are updated under a lock so the ``repro serve`` daemon's threaded
handlers never lose counts.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.errors import ReproError
from repro.exec.serialize import (
    SynthesisResult,
    result_from_dict,
    result_to_dict,
)
from repro.obs import metrics as _metrics
from repro.resilience import maybe_io_error, should_corrupt_cache

__all__ = ["CacheStats", "CacheUsage", "ResultCache"]

_CACHE_EVENTS = _metrics.counter(
    "repro_cache_events_total",
    "Result-cache events across every cache instance in the process.",
    ("event",),
)


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance.

    Instances are mutated only by their owning :class:`ResultCache`,
    which serializes every update under its lock; readers see a
    consistent (if momentarily stale) view without locking.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0
    write_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def __str__(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits, {self.stores} stores, "
            f"{self.invalid} invalid entries, "
            f"{self.write_errors} write errors"
        )


@dataclass(frozen=True)
class CacheUsage:
    """On-disk footprint of one cache directory."""

    entries: int
    total_bytes: int

    def __str__(self) -> str:
        return f"{self.entries} entries, {self.total_bytes} bytes"


class ResultCache:
    """Persistent map from task keys to :class:`SynthesisResult`.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries; created on first store.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        if self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise ReproError(
                f"cache path {self.cache_dir} exists and is not a directory"
            )
        self.stats = CacheStats()
        # Serializes statistics updates; file operations themselves are
        # atomic (os.replace) or vanish-tolerant and need no lock, so
        # threaded servers never contend on I/O through this.
        self._stats_lock = threading.Lock()
        self.sweep_orphans()

    def _record(
        self,
        hits: int = 0,
        misses: int = 0,
        stores: int = 0,
        invalid: int = 0,
        write_errors: int = 0,
    ) -> None:
        """Apply one statistics update atomically.

        The single funnel for cache accounting, which makes it the one
        place to mirror events into the process-global registry (the
        ``/metrics`` view, aggregated across cache instances).
        """
        with self._stats_lock:
            self.stats.hits += hits
            self.stats.misses += misses
            self.stats.stores += stores
            self.stats.invalid += invalid
            self.stats.write_errors += write_errors
        for event, count in (  # registry mirror, outside our lock
            ("hit", hits),
            ("miss", misses),
            ("store", stores),
            ("invalid", invalid),
            ("write_error", write_errors),
        ):
            if count:
                _CACHE_EVENTS.inc(count, event=event)

    def stats_snapshot(self) -> Dict[str, int]:
        """One atomic cut of this instance's statistics.

        Reading ``cache.stats`` field by field can interleave with a
        concurrent ``_record`` and return, e.g., a hit count newer than
        the miss count beside it; payloads that report several fields
        together (the server's ``/v1/stats``) read through this.
        """
        with self._stats_lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "stores": self.stats.stores,
                "invalid": self.stats.invalid,
                "write_errors": self.stats.write_errors,
            }

    def _path(self, key: str) -> Path:
        if not key or any(ch in key for ch in "/\\."):
            raise ReproError(f"invalid cache key {key!r}")
        return self.cache_dir / f"{key}.json"

    def _load(self, key: str) -> Dict[str, Any]:
        """Raw payload for ``key``; raises on any unreadable entry."""
        path = self._path(key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        # Injection point ``cache.corrupt``: an existing entry decodes
        # to garbage, taking exactly the real-corruption path (invalid
        # miss -> re-solve -> overwrite). No-op without a FaultPlan.
        if should_corrupt_cache(key):
            raise ValueError(f"cache entry {key!r} corrupted (injected)")
        if not isinstance(payload, dict):
            raise ValueError(f"cache entry {key!r} is not a JSON object")
        return payload

    def _touch(self, key: str) -> None:
        """Refresh the entry's mtime so :meth:`prune` evicts true LRU."""
        try:
            os.utime(self._path(key))
        except OSError:  # pragma: no cover - best-effort bookkeeping
            pass

    def get(self, key: str) -> Optional[SynthesisResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        Unreadable or format-incompatible entries count as misses (and
        are reported in :attr:`stats`), never as errors: a cache must
        degrade to recomputation. Malformed *keys* are still errors --
        they indicate a caller bug, not a degraded cache.
        """
        self._path(key)  # reject malformed keys before the miss handling
        try:
            result = result_from_dict(self._load(key))
        except FileNotFoundError:
            self._record(misses=1)
            return None
        # ValueError covers UnicodeDecodeError (binary garbage in the
        # file) and any json.JSONDecodeError not already subsumed by it:
        # a corrupted or truncated entry is a miss to re-solve and
        # overwrite, never an error.
        except (OSError, ValueError, ReproError):
            self._record(misses=1, invalid=1)
            return None
        self._record(hits=1)
        self._touch(key)
        return result

    def get_json(self, key: str) -> Optional[Dict[str, Any]]:
        """A generic JSON entry for ``key``, or ``None`` on a miss.

        Format validation is the caller's job (per-stage entries carry
        their own ``format`` field); unreadable entries degrade to
        misses exactly as whole-result entries do.
        """
        self._path(key)  # reject malformed keys before the miss handling
        try:
            payload = self._load(key)
        except FileNotFoundError:
            self._record(misses=1)
            return None
        except (OSError, ValueError):
            self._record(misses=1, invalid=1)
            return None
        self._record(hits=1)
        self._touch(key)
        return payload

    def put(self, key: str, result: SynthesisResult) -> None:
        """Store ``result`` under ``key`` atomically."""
        self.put_json(key, result_to_dict(result))

    def put_json(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a generic JSON entry under ``key`` atomically.

        Writes are best-effort: a transient :class:`OSError` (disk
        squeeze, permission hiccup, the ``io.transient`` fault point)
        is retried once, and a write that still fails is *swallowed* --
        counted in :attr:`stats` as a ``write_error`` -- because a
        cache that cannot persist must degrade to recomputation, never
        take the solve that produced the value down with it.
        Serialization errors (unencodable payloads) still raise: they
        are caller bugs, not degraded storage.
        """
        path = self._path(key)
        encoded = json.dumps(payload, sort_keys=True, indent=None)
        for attempt in range(2):
            try:
                maybe_io_error(f"{key}:a{attempt}")
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    dir=self.cache_dir, prefix=".tmp-", suffix=".json"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        handle.write(encoded)
                    os.replace(tmp_name, path)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                    raise
            except OSError:
                continue
            self._record(stores=1)
            return
        self._record(write_errors=1)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> Iterator[str]:
        """Keys of every entry currently on disk.

        Only names that are valid cache keys are yielded: orphaned temp
        files (".tmp-*" from a hard-killed writer) and foreign JSON
        files someone dropped into the directory (e.g. "report.v2.json",
        whose stem ``_path`` would reject) are invisible rather than
        poisoning ``usage``/``prune``/``clear``.
        """
        if not self.cache_dir.is_dir():
            return
        for entry in sorted(self.cache_dir.glob("*.json")):
            if entry.name.startswith("."):
                continue
            if any(ch in entry.stem for ch in "/\\."):
                continue
            yield entry.stem

    def _entry_files(self):
        """Every managed entry: ``.json`` files, ``.npz`` tensor
        sidecars, and ``.mmap`` uncompressed-sidecar *directories* (see
        :meth:`repro.pipeline.store.ArtifactStore.put_arrays`), with
        the same foreign-file filtering as :meth:`keys`."""
        if not self.cache_dir.is_dir():
            return
        for pattern in ("*.json", "*.npz", "*.mmap"):
            for entry in sorted(self.cache_dir.glob(pattern)):
                if entry.name.startswith("."):
                    continue
                if any(ch in entry.stem for ch in "/\\."):
                    continue
                yield entry

    @staticmethod
    def _entry_size(path: Path) -> int:
        """One entry's footprint: the file's size, or the summed member
        sizes for ``.mmap`` directory entries."""
        stat = path.stat()
        if not path.is_dir():
            return stat.st_size
        total = 0
        for member in path.iterdir():
            try:
                total += member.stat().st_size
            except OSError:  # member vanished mid-walk: skip
                continue
        return total

    @staticmethod
    def _remove_entry(path: Path) -> None:
        """Unlink one entry, whichever shape it has; raises ``OSError``
        on failure like a plain unlink (vanished directories pass)."""
        if path.is_dir():
            try:
                shutil.rmtree(path)
            except FileNotFoundError:  # concurrent eviction won
                pass
        else:
            path.unlink()

    # Temp files older than this are assumed orphaned: no healthy
    # writer holds a mkstemp file open for an hour.
    ORPHAN_TMP_AGE_S = 3600.0

    def sweep_orphans(self, max_age_s: Optional[float] = None) -> int:
        """Delete orphaned ``.tmp-*`` files left by hard-killed writers.

        :meth:`put_json` unlinks its temp file on every failure path it
        can see, but a writer killed outright (a crashed pool worker, a
        SIGKILLed server) leaves its temp file behind, invisible to
        :meth:`keys`/:meth:`prune` and accumulating forever. The sweep
        runs on construction and before :meth:`prune`, removing temp
        files -- and temp *directories* from torn mmap-tier writes --
        older than ``max_age_s`` (default :attr:`ORPHAN_TMP_AGE_S`);
        the age guard keeps it from racing a *live* writer's in-flight
        temp file in a shared directory. Returns the number of entries
        removed.
        """
        if max_age_s is None:
            max_age_s = self.ORPHAN_TMP_AGE_S
        if not self.cache_dir.is_dir():
            return 0
        cutoff = time.time() - max_age_s
        removed = 0
        for entry in list(self.cache_dir.glob(".tmp-*")):
            try:
                if entry.stat().st_mtime <= cutoff:
                    self._remove_entry(entry)
                    removed += 1
            except OSError:  # vanished mid-walk or unremovable: skip
                continue
        return removed

    def clear(self) -> int:
        """Delete every entry (JSON, ``.npz`` sidecars, and ``.mmap``
        sidecar directories); returns the number of entries removed."""
        removed = 0
        for path in list(self._entry_files()):
            try:
                self._remove_entry(path)
                removed += 1
            except OSError:
                pass
        return removed

    def usage(self) -> CacheUsage:
        """Entry/sidecar count and total bytes currently on disk.

        Safe against concurrent writers and pruners: an entry that
        vanishes between the directory walk and its ``stat`` (a
        ``FileNotFoundError``, e.g. an in-flight ``put_json`` replacing
        it or a concurrent ``prune`` evicting it) is simply skipped.
        """
        entries = 0
        total = 0
        for path in self._entry_files():
            try:
                total += self._entry_size(path)
                entries += 1
            except OSError:  # vanished mid-walk: skip, never raise
                pass
        return CacheUsage(entries=entries, total_bytes=total)

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until the cache fits.

        Entries (JSON files, ``.npz`` sidecars and ``.mmap`` sidecar
        directories alike) are removed oldest-mtime-first (hits refresh
        mtime, so recently-used entries survive) until the remaining
        footprint is at most ``max_bytes``. Returns the number of
        entries removed.

        Like :meth:`usage`, pruning tolerates concurrent access: files
        that vanish between the walk and their ``stat``/``unlink``
        (``FileNotFoundError`` from a racing writer or pruner) are
        skipped, so ``repro serve``'s stats endpoint and in-flight jobs
        can share a directory with maintenance commands.
        """
        if max_bytes < 0:
            raise ReproError(f"max_bytes must be >= 0, got {max_bytes}")
        self.sweep_orphans()
        aged = []
        total = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
                size = self._entry_size(path)
            except OSError:  # vanished mid-walk: skip, never raise
                continue
            aged.append((stat.st_mtime, str(path), path, size))
            total += size
        aged.sort(key=lambda item: (item[0], item[1]))
        removed = 0
        for _mtime, _name, path, size in aged:
            if total <= max_bytes:
                break
            try:
                self._remove_entry(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {self.cache_dir} ({self.stats})>"
