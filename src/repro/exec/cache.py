"""Content-addressed on-disk result cache.

Each solved synthesis point is stored as ``<key>.json`` under the cache
directory, where ``key`` is the :func:`~repro.exec.fingerprint.task_key`
of (trace fingerprint, configuration, window). Writes are atomic
(temp file + ``os.replace``) so concurrent sweeps sharing a cache
directory never observe torn entries; corrupt or stale-format entries
are treated as misses and rewritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import ReproError
from repro.exec.serialize import (
    SynthesisResult,
    result_from_dict,
    result_to_dict,
)

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def __str__(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits, {self.stores} stores, "
            f"{self.invalid} invalid entries"
        )


class ResultCache:
    """Persistent map from task keys to :class:`SynthesisResult`.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries; created on first store.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        if self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise ReproError(
                f"cache path {self.cache_dir} exists and is not a directory"
            )
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        if not key or any(ch in key for ch in "/\\."):
            raise ReproError(f"invalid cache key {key!r}")
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> Optional[SynthesisResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        Unreadable or format-incompatible entries count as misses (and
        are reported in :attr:`stats`), never as errors: a cache must
        degrade to recomputation.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = result_from_dict(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        # ValueError covers UnicodeDecodeError (binary garbage in the
        # file) and any json.JSONDecodeError not already subsumed by it:
        # a corrupted or truncated entry is a miss to re-solve and
        # overwrite, never an error.
        except (OSError, ValueError, ReproError):
            self.stats.misses += 1
            self.stats.invalid += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SynthesisResult) -> None:
        """Store ``result`` under ``key`` atomically."""
        path = self._path(key)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result_to_dict(result), sort_keys=True, indent=None)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> Iterator[str]:
        """Keys of every entry currently on disk."""
        if not self.cache_dir.is_dir():
            return
        for entry in sorted(self.cache_dir.glob("*.json")):
            # pathlib's glob matches dotfiles; skip orphaned temp files
            # (".tmp-*") left by a hard-killed writer.
            if entry.name.startswith("."):
                continue
            yield entry.stem

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self._path(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {self.cache_dir} ({self.stats})>"
