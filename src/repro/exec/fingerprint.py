"""Canonical content hashing for cache keys.

A sweep point is fully determined by three inputs: the traffic trace
(what the application did on the full crossbar), the synthesis
configuration, and the analysis window. Hashing a canonical encoding of
those three gives a content-addressed key that is stable across
processes, Python versions and dict orderings -- the property the
on-disk cache and the cross-process tests rely on.

``PYTHONHASHSEED`` does not affect these digests: everything is encoded
through sorted, explicit JSON before hashing with SHA-256.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Optional

from repro.core.spec import SynthesisConfig
from repro.traffic.trace import TrafficTrace

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "canonical_json",
    "sha256_hex",
    "trace_fingerprint",
    "config_fingerprint",
    "task_key",
]

CACHE_SCHEMA_VERSION = 1
"""Bump to invalidate every cached result when the encoding changes."""


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` deterministically (sorted keys, no spaces)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def sha256_hex(text: str) -> str:
    """Hex SHA-256 digest of ``text``."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def trace_fingerprint(trace: TrafficTrace) -> str:
    """Content hash of a traffic trace.

    Covers the platform shape, the simulation length and every record
    field that influences synthesis (timestamps, endpoints, burst,
    criticality). Records are hashed in the trace's canonical (sorted)
    order, so equal traces produce equal fingerprints regardless of the
    record order they were built from.

    The digest is memoized on the trace object: traces are immutable,
    and sweep drivers fingerprint the same trace once per ``run_sweep``
    call, so repeated hashing of a large record list is pure waste.
    """
    memoized = trace.__dict__.get("_fingerprint")
    if memoized is not None:
        return memoized
    digest = hashlib.sha256()
    header = canonical_json(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "num_initiators": trace.num_initiators,
            "num_targets": trace.num_targets,
            "total_cycles": trace.total_cycles,
            "num_records": len(trace),
        }
    )
    digest.update(header.encode("utf-8"))
    for record in trace.records:
        row = (
            record.initiator,
            record.target,
            record.kind.value,
            record.burst,
            record.issue,
            record.it_grant,
            record.it_release,
            record.service_start,
            record.service_end,
            record.ti_grant,
            record.ti_release,
            record.complete,
            int(record.critical),
        )
        digest.update(canonical_json(row).encode("utf-8"))
    result = digest.hexdigest()
    trace.__dict__["_fingerprint"] = result
    return result


def config_fingerprint(config: SynthesisConfig) -> str:
    """Content hash of a synthesis configuration (all fields)."""
    return sha256_hex(canonical_json(asdict(config)))


def task_key(
    trace_digest: str,
    config: SynthesisConfig,
    window_size: int,
    application: Optional[str] = None,
) -> str:
    """Cache key of one synthesis point.

    ``trace_digest`` is a precomputed :func:`trace_fingerprint` (sweeps
    hash their shared trace once, not once per point). ``application``
    tags the key with the descriptor name when one is known, so traces
    from differently-named applications never collide even if their
    records coincide.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "trace": trace_digest,
        "config": asdict(config),
        "window_size": int(window_size),
        "application": application or "",
    }
    return sha256_hex(canonical_json(payload))
