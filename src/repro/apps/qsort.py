"""Quick Sort suite (15 cores).

Divide-and-conquer sorting: cores partition independent sub-arrays with
data-dependent (random) pivot work between memory bursts and synchronize
only occasionally, so their phases drift apart. Low mutual overlap and
moderate bandwidth let three private-memory streams share each bus
(15 cores -> 6 buses, the paper's 2.5x saving).
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.descriptor import Application, standard_platform
from repro.apps.programs import WorkloadShape, phased_program

__all__ = ["build_qsort"]

_QSORT_ARMS = 6  # 6 ARMs -> 15 cores

_QSORT_SHAPE = WorkloadShape(
    iterations=34,
    stages=3,
    slot_cycles=440,
    accesses_per_iteration=40,
    burst_words=8,
    write_phase_period=1,
    compute_between=0,
    barrier_every=8,  # rare global synchronization
    desync_max_compute=160,  # data-dependent pivot work
    shared_every=6,
    shared_burst=4,
    irq_every=10,
    jitter=64,
    seed=23,
)


def build_qsort(critical_targets: Sequence[int] = (), seed: int = 23) -> Application:
    """Quick Sort suite: 6 ARMs, 15 cores (paper Table 2 row 'QSort')."""
    shape = WorkloadShape(**{**_QSORT_SHAPE.__dict__, "seed": seed})
    config = standard_platform(_QSORT_ARMS, critical_targets=critical_targets,
                               seed=seed)
    builders = tuple(
        (lambda arm=arm: phased_program(arm, _QSORT_ARMS, shape))
        for arm in range(_QSORT_ARMS)
    )
    period_estimate = shape.stages * shape.slot_cycles + 500
    return Application(
        name="qsort",
        config=config,
        program_builders=builders,
        sim_cycles=shape.iterations * period_estimate + 12_000,
        default_window=1_000,
        description="divide-and-conquer quicksort partitions (15 cores)",
    )
