"""Pipelined matrix-multiplication suites (Mat1: 25 cores, Mat2: 21 cores).

The ARM cores run pipelined matrix multiplication: each iteration one
pipeline stage loads operand tiles from its private memory, multiplies,
and stores result tiles back, with stage results handed downstream
through the lock-protected shared memory. The pipeline has three temporal
stages, so at any instant roughly a third of the cores are on the bus --
the traffic structure that lets three private-memory streams share a bus
when (and only when) they belong to *different* stages, which is exactly
the binding the paper reports for Mat2.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.descriptor import Application, standard_platform
from repro.apps.programs import WorkloadShape, phased_program

__all__ = ["build_mat1", "build_mat2"]

_MAT2_ARMS = 9  # 9 ARMs -> 21 cores, as in the paper's Fig. 2(a)
_MAT1_ARMS = 11  # 11 ARMs -> 25 cores

_MAT2_SHAPE = WorkloadShape(
    iterations=30,
    stages=3,
    slot_cycles=330,
    accesses_per_iteration=24,
    burst_words=8,
    write_phase_period=1,
    compute_between=0,
    barrier_every=1,
    shared_every=5,
    shared_burst=4,
    irq_every=8,
    seed=11,
)

# Mat1 runs the larger matrix suite: more tile work per stage slot, which
# raises each core's bus duty cycle and pushes the design to 4 buses per
# crossbar (11 cores at ~30% demand each).
_MAT1_SHAPE = WorkloadShape(
    iterations=30,
    stages=3,
    slot_cycles=330,
    accesses_per_iteration=30,
    burst_words=8,
    write_phase_period=1,
    compute_between=0,
    barrier_every=1,
    shared_every=5,
    shared_burst=4,
    irq_every=8,
    seed=13,
)


def _build_matrix(
    name: str,
    num_arms: int,
    shape: WorkloadShape,
    critical_targets: Sequence[int],
    seed: int,
    description: str,
) -> Application:
    shape = WorkloadShape(**{**shape.__dict__, "seed": seed})
    config = standard_platform(num_arms, critical_targets=critical_targets,
                               seed=seed)
    builders = tuple(
        (lambda arm=arm: phased_program(arm, num_arms, shape))
        for arm in range(num_arms)
    )
    period_estimate = shape.stages * shape.slot_cycles + 300
    return Application(
        name=name,
        config=config,
        program_builders=builders,
        sim_cycles=shape.iterations * period_estimate + 10_000,
        default_window=1_000,
        description=description,
    )


def build_mat1(
    critical_targets: Sequence[int] = (), seed: int = 13
) -> Application:
    """Matrix suite 1: 11 ARMs, 25 cores (paper Table 2 row 'Mat1')."""
    return _build_matrix(
        "mat1", _MAT1_ARMS, _MAT1_SHAPE, critical_targets, seed,
        "pipelined matrix multiplication, large suite (25 cores)",
    )


def build_mat2(
    critical_targets: Sequence[int] = (), seed: int = 11
) -> Application:
    """Matrix suite 2: 9 ARMs, 21 cores (paper Fig. 2(a), Table 1)."""
    return _build_matrix(
        "mat2", _MAT2_ARMS, _MAT2_SHAPE, critical_targets, seed,
        "pipelined matrix multiplication benchmark (21 cores)",
    )
