"""The 20-core synthetic benchmark (paper Sections 7.2 and 7.4).

Unlike the five MPSoC suites, the synthetic benchmark is defined directly
by its traffic (bursts of a typical size separated by gaps), so it is
generated as a trace by :mod:`repro.traffic.synthetic` and wrapped here
as an :class:`~repro.apps.descriptor.Application` via trace replay --
letting the same synthesis + validation pipeline run on it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.apps.descriptor import Application
from repro.platform.initiator import trace_replay_program
from repro.platform.soc import SoCConfig
from repro.platform.target import TargetConfig, TargetKind
from repro.traffic.synthetic import SyntheticTrafficConfig, generate_synthetic_trace
from repro.traffic.trace import TrafficTrace

__all__ = ["build_synthetic", "synthetic_trace"]


def synthetic_trace(
    burst_cycles: int = 1_000,
    total_cycles: int = 120_000,
    num_initiators: int = 10,
    num_targets: int = 10,
    sync_groups: Optional[Tuple[Tuple[int, ...], ...]] = None,
    critical_targets: Sequence[int] = (),
    seed: int = 3,
) -> TrafficTrace:
    """The synthetic benchmark's full-crossbar trace.

    Defaults give the paper's setup: 20 cores, typical burst around 1000
    cycles.
    """
    config = SyntheticTrafficConfig(
        num_initiators=num_initiators,
        num_targets=num_targets,
        total_cycles=total_cycles,
        burst_cycles=burst_cycles,
        gap_cycles=max(burst_cycles * 2, 500),
        sync_groups=sync_groups,
        critical_targets=tuple(critical_targets),
        seed=seed,
    )
    return generate_synthetic_trace(config)


def build_synthetic(
    burst_cycles: int = 1_000,
    total_cycles: int = 120_000,
    seed: int = 3,
    critical_targets: Sequence[int] = (),
) -> Application:
    """Wrap the synthetic benchmark as a replayable application."""
    trace = synthetic_trace(
        burst_cycles=burst_cycles,
        total_cycles=total_cycles,
        critical_targets=critical_targets,
        seed=seed,
    )
    config = SoCConfig(
        initiator_names=list(trace.initiator_names),
        targets=[
            TargetConfig(
                name=name,
                kind=TargetKind.MEMORY,
                critical=(index in set(critical_targets)),
            )
            for index, name in enumerate(trace.target_names)
        ],
        seed=seed,
    )
    builders = tuple(
        (
            lambda index=index: trace_replay_program(
                trace.records_from_initiator(index)
            )
        )
        for index in range(trace.num_initiators)
    )
    return Application(
        name="synthetic",
        config=config,
        program_builders=builders,
        sim_cycles=total_cycles * 3,
        default_window=burst_cycles * 2,
        description=f"20-core synthetic burst benchmark (burst ~{burst_cycles} cy)",
    )
