"""Application registry: name -> builder."""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from repro.apps.des import build_des
from repro.apps.descriptor import Application
from repro.apps.fft import build_fft
from repro.apps.matrix import build_mat1, build_mat2
from repro.apps.qsort import build_qsort
from repro.apps.synthetic import build_synthetic
from repro.errors import ApplicationError
from repro.traffic.trace import TrafficTrace

__all__ = ["APPLICATIONS", "build_application", "default_full_crossbar_trace"]

APPLICATIONS: Dict[str, Callable[..., Application]] = {
    "mat1": build_mat1,
    "mat2": build_mat2,
    "fft": build_fft,
    "qsort": build_qsort,
    "des": build_des,
    "synthetic": build_synthetic,
}
"""Builders for every benchmark in the paper's evaluation."""


def build_application(name: str, **kwargs) -> Application:
    """Build a benchmark application by registry name.

    Extra keyword arguments are forwarded to the specific builder (e.g.
    ``critical_targets`` or, for ``synthetic``, ``burst_cycles``).

    A *default* build (no keyword overrides) is tagged with its
    ``registry_key``, marking that ``build_application(key)`` in another
    process reproduces this exact application -- the property the
    execution engine's parallel evaluation path requires. Customized
    builds carry no key and are always evaluated in-process.
    """
    try:
        builder = APPLICATIONS[name]
    except KeyError:
        known = ", ".join(sorted(APPLICATIONS))
        raise ApplicationError(
            f"unknown application {name!r}; available: {known}"
        ) from None
    application = builder(**kwargs)
    if not kwargs:
        application = replace(application, registry_key=name)
    return application


_DEFAULT_TRACES: Dict[str, TrafficTrace] = {}


def default_full_crossbar_trace(name: str) -> TrafficTrace:
    """The Phase-1 full-crossbar trace of a *default* registry build.

    Memoized per process: the platform simulation is deterministic, and
    scenario suites, sweeps and examples repeatedly need the stock
    applications' traffic -- one simulation per process serves every
    consumer (the trace object is immutable, so sharing is safe).
    Builds with keyword overrides are not cached; simulate those
    explicitly.
    """
    if name not in _DEFAULT_TRACES:
        trace = build_application(name).simulate_full_crossbar().trace
        _DEFAULT_TRACES[name] = trace
    return _DEFAULT_TRACES[name]
