"""Benchmark application suite (MPARM benchmark stand-ins).

Five MPSoC applications reconstruct the traffic structure of the paper's
benchmarks, with matching core counts (N ARM initiators, N private
memories, one shared memory, one semaphore memory, one interrupt device
-- 2N + 3 cores):

=========  ====  ==========  =========================================
benchmark  ARMs  total cores  traffic character
=========  ====  ==========  =========================================
Mat1       11    25          pipelined matmul, 4 temporal stages
Mat2        9    21          pipelined matmul, 3 temporal stages
FFT        13    29          data-parallel butterfly stages, heavy
                             synchronized bursts (hard to compact)
QSort       6    15          desynchronized divide-and-conquer phases
DES         8    19          block pipeline with round-key exchanges
=========  ====  ==========  =========================================

Every application is an :class:`~repro.apps.descriptor.Application`: a
platform description plus per-core program builders, directly consumable
by :class:`repro.platform.SoC` and the synthesis flow.
"""

from repro.apps.descriptor import Application, standard_platform
from repro.apps.registry import (
    APPLICATIONS,
    build_application,
    default_full_crossbar_trace,
)

__all__ = [
    "Application",
    "standard_platform",
    "APPLICATIONS",
    "build_application",
    "default_full_crossbar_trace",
]
