"""DES encryption system (19 cores).

A block-cipher pipeline: initial permutation, Feistel rounds and final
permutation are spread across cores as three temporal stages. Blocks
stream through private memories; round keys are fetched from the shared
memory under lock. The staged structure keeps mutual overlap low, so the
design compacts well (19 cores -> 6 buses, the paper's 3.12x saving).
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.descriptor import Application, standard_platform
from repro.apps.programs import WorkloadShape, phased_program

__all__ = ["build_des"]

_DES_ARMS = 8  # 8 ARMs -> 19 cores

_DES_SHAPE = WorkloadShape(
    iterations=32,
    stages=3,
    slot_cycles=320,
    accesses_per_iteration=26,
    burst_words=8,
    write_phase_period=1,
    compute_between=0,
    barrier_every=1,
    shared_every=4,  # round-key fetches
    shared_burst=4,
    irq_every=8,
    seed=29,
)


def build_des(critical_targets: Sequence[int] = (), seed: int = 29) -> Application:
    """DES encryption system: 8 ARMs, 19 cores (paper Table 2 row 'DES')."""
    shape = WorkloadShape(**{**_DES_SHAPE.__dict__, "seed": seed})
    config = standard_platform(_DES_ARMS, critical_targets=critical_targets,
                               seed=seed)
    builders = tuple(
        (lambda arm=arm: phased_program(arm, _DES_ARMS, shape))
        for arm in range(_DES_ARMS)
    )
    period_estimate = shape.stages * shape.slot_cycles + 350
    return Application(
        name="des",
        config=config,
        program_builders=builders,
        sim_cycles=shape.iterations * period_estimate + 10_000,
        default_window=1_000,
        description="DES block-encryption pipeline (19 cores)",
    )
