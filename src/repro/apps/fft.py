"""FFT suite (29 cores).

Data-parallel butterfly stages: *all* cores compute the same stage at the
same time between barriers, split into two half-groups (even/odd
butterfly blocks). The tight synchronization produces heavy pairwise
overlap between the private-memory streams inside each half-group, so the
conflict pre-processing forces most of them onto separate buses -- this
is why FFT compacts far less than the other suites in the paper's Table 2
(29 cores -> 15 buses, only a 1.93x saving).
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.descriptor import Application, standard_platform
from repro.apps.programs import WorkloadShape, phased_program

__all__ = ["build_fft"]

_FFT_ARMS = 13  # 13 ARMs -> 29 cores

_FFT_SHAPE = WorkloadShape(
    iterations=26,
    stages=2,  # even/odd butterfly halves
    slot_cycles=560,
    accesses_per_iteration=42,
    burst_words=8,
    write_phase_period=1,
    compute_between=0,
    barrier_every=1,  # barrier per butterfly stage: lock-step
    shared_every=4,  # transpose exchanges through shared memory
    shared_burst=8,
    irq_every=13,
    jitter=8,  # nearly perfectly aligned slots
    seed=17,
)


def build_fft(critical_targets: Sequence[int] = (), seed: int = 17) -> Application:
    """FFT suite: 13 ARMs, 29 cores (paper Table 2 row 'FFT')."""
    shape = WorkloadShape(**{**_FFT_SHAPE.__dict__, "seed": seed})
    config = standard_platform(_FFT_ARMS, critical_targets=critical_targets,
                               seed=seed)
    builders = tuple(
        (lambda arm=arm: phased_program(arm, _FFT_ARMS, shape))
        for arm in range(_FFT_ARMS)
    )
    period_estimate = shape.stages * shape.slot_cycles + 400
    return Application(
        name="fft",
        config=config,
        program_builders=builders,
        sim_cycles=shape.iterations * period_estimate + 12_000,
        default_window=1_000,
        description="data-parallel FFT butterfly stages (29 cores)",
    )
