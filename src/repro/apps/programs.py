"""Workload program building blocks.

All five benchmarks share one skeleton, the *phased program*: iterations
separated by barriers, each iteration placing the core's memory work into
a temporal *stage slot* (pipeline position). The phase structure is what
shapes the traffic the synthesis methodology exploits:

* cores in the same stage access their private memories at the same time
  -> strong pairwise overlap (must not share a bus),
* cores in different stages are temporally disjoint -> they can share a
  bus without hurting latency even when the summed bandwidth is high,
* iterations alternate write-heavy and read-heavy blocks, loading the
  initiator->target and target->initiator crossbars in alternating
  windows (reads carry payload on the response path, writes on the
  request path),
* shared memory, semaphore and interrupt traffic is sparse and
  lock-protected, reproducing the paper's low-rate common targets.

Every program is deterministic given its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ApplicationError
from repro.platform.initiator import (
    Barrier,
    Compute,
    Lock,
    Operation,
    Read,
    Unlock,
    Write,
)

__all__ = ["WorkloadShape", "phased_program"]


@dataclass(frozen=True)
class WorkloadShape:
    """Parameters of a phased benchmark workload.

    Attributes
    ----------
    iterations:
        Barrier-to-barrier iterations to run.
    stages:
        Temporal pipeline depth; core ``arm`` occupies slot
        ``arm % stages`` within each iteration.
    slot_cycles:
        Nominal stage-slot length; stage *s* starts its work ``s *
        slot_cycles`` after the barrier.
    accesses_per_iteration:
        Number of burst accesses in the core's slot each iteration.
    burst_words:
        Words per burst access.
    write_phase_period:
        The block kind flips between write-heavy and read-heavy every
        ``write_phase_period`` iterations (1 = strict alternation). 0
        disables alternation (every iteration mixes reads and writes).
    compute_between:
        Compute cycles inserted between consecutive accesses.
    barrier_every:
        Iterations between barrier synchronizations (1 = lock-step, the
        matmul/FFT pattern; larger values let phases drift, the qsort
        pattern). 0 disables barriers entirely.
    desync_max_compute:
        Upper bound of random per-iteration compute padding; non-zero
        values desynchronize cores (qsort).
    shared_every:
        Iterations between lock-protected shared-memory exchanges.
    shared_burst:
        Burst length of the shared-memory exchange accesses.
    irq_every:
        Iterations between interrupt-device writes (round-robin leader).
    jitter:
        Small random start-of-slot jitter bound, in cycles.
    seed:
        Base seed; each core derives an independent stream.
    """

    iterations: int = 30
    stages: int = 3
    slot_cycles: int = 330
    accesses_per_iteration: int = 24
    burst_words: int = 8
    write_phase_period: int = 1
    compute_between: int = 0
    barrier_every: int = 1
    desync_max_compute: int = 0
    shared_every: int = 5
    shared_burst: int = 4
    irq_every: int = 8
    jitter: int = 16
    seed: int = 7

    def validate(self) -> None:
        """Raise :class:`ApplicationError` on inconsistent parameters."""
        if self.iterations < 1:
            raise ApplicationError("iterations must be >= 1")
        if self.stages < 1:
            raise ApplicationError("stages must be >= 1")
        if self.accesses_per_iteration < 1:
            raise ApplicationError("accesses_per_iteration must be >= 1")
        if self.burst_words < 1:
            raise ApplicationError("burst_words must be >= 1")
        if self.barrier_every < 0 or self.shared_every < 0 or self.irq_every < 0:
            raise ApplicationError("periods must be >= 0")


def phased_program(
    arm: int, num_arms: int, shape: WorkloadShape
) -> Iterator[Operation]:
    """Generate one core's operation stream for a phased workload.

    Target indices follow the standard platform layout: private memory
    ``arm``, shared memory ``num_arms``, semaphore ``num_arms + 1``,
    interrupt device ``num_arms + 2``.
    """
    shape.validate()
    rng = random.Random((shape.seed << 20) ^ (arm * 0x9E3779B1))
    private = arm
    shared = num_arms
    semaphore = num_arms + 1
    interrupt = num_arms + 2
    stage = arm % shape.stages

    for iteration in range(shape.iterations):
        if shape.barrier_every and iteration % shape.barrier_every == 0:
            yield Barrier(
                semaphore, barrier_id=0, participants=num_arms, poll_cycles=45
            )
        # move into this core's temporal slot
        offset = stage * shape.slot_cycles + rng.randrange(shape.jitter + 1)
        if offset:
            yield Compute(offset)

        yield from _memory_block(
            private, iteration, shape, stream=f"arm{arm}->pm{arm}"
        )

        if shape.desync_max_compute:
            yield Compute(rng.randrange(shape.desync_max_compute + 1))

        if shape.shared_every and iteration % shape.shared_every == arm % max(
            1, shape.shared_every
        ):
            yield Lock(semaphore, lock_id=1, poll_cycles=30)
            yield Read(shared, burst=shape.shared_burst,
                       stream=f"arm{arm}->shared")
            yield Write(shared, burst=shape.shared_burst,
                        stream=f"arm{arm}->shared")
            yield Unlock(semaphore, lock_id=1)

        if (
            shape.irq_every
            and iteration % shape.irq_every == 0
            and arm == (iteration // shape.irq_every) % num_arms
        ):
            yield Write(interrupt, burst=1, stream=f"arm{arm}->irq")


def _memory_block(
    private: int, iteration: int, shape: WorkloadShape, stream: str
) -> Iterator[Operation]:
    """The private-memory burst block of one iteration.

    With alternation enabled, even blocks are write-heavy (tile
    store-back: request-path payload) and odd blocks read-heavy (tile
    load: response-path payload); otherwise reads and writes interleave.
    """
    if shape.write_phase_period:
        writing = (iteration // shape.write_phase_period) % 2 == 0
        op_class = Write if writing else Read
        for _ in range(shape.accesses_per_iteration):
            yield op_class(private, burst=shape.burst_words, stream=stream)
            if shape.compute_between:
                yield Compute(shape.compute_between)
    else:
        for index in range(shape.accesses_per_iteration):
            op_class = Write if index % 2 == 0 else Read
            yield op_class(private, burst=shape.burst_words, stream=stream)
            if shape.compute_between:
                yield Compute(shape.compute_between)
