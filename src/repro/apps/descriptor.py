"""Application descriptors.

An :class:`Application` bundles everything needed to simulate one MPSoC
benchmark on any candidate crossbar: the platform description (cores,
timing), fresh per-initiator programs, and the recommended simulation
length. The standard platform layout follows the paper's Fig. 2(a):

* initiators: ``arm0 .. armN-1``
* targets: ``pm0 .. pmN-1`` (private memories), then ``shared``,
  ``sem`` (semaphore memory) and ``irq`` (interrupt device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence, Tuple

from repro.errors import ApplicationError
from repro.platform.drivers import ProgramDriver, simulate_workload
from repro.platform.initiator import Operation
from repro.platform.soc import SimulationResult, SoCConfig
from repro.platform.fabric import full_crossbar_binding, shared_bus_binding
from repro.platform.target import TargetConfig, TargetKind

__all__ = ["Application", "standard_platform"]

ProgramBuilder = Callable[[], Iterator[Operation]]


def standard_platform(
    num_arms: int,
    critical_targets: Sequence[int] = (),
    seed: int = 1,
) -> SoCConfig:
    """The paper's 2N+3-core platform: N ARMs, N PMs, shared, sem, irq."""
    if num_arms < 1:
        raise ApplicationError(f"need at least one ARM core, got {num_arms}")
    targets = [
        TargetConfig(name=f"pm{index}", kind=TargetKind.MEMORY)
        for index in range(num_arms)
    ]
    targets.append(TargetConfig(name="shared", kind=TargetKind.MEMORY,
                                service_cycles=2))
    targets.append(TargetConfig(name="sem", kind=TargetKind.SEMAPHORE))
    targets.append(TargetConfig(name="irq", kind=TargetKind.INTERRUPT))
    critical = set(critical_targets)
    targets = [
        TargetConfig(
            name=target.name,
            kind=target.kind,
            service_cycles=target.service_cycles,
            critical=(index in critical),
        )
        for index, target in enumerate(targets)
    ]
    return SoCConfig(
        initiator_names=[f"arm{index}" for index in range(num_arms)],
        targets=targets,
        seed=seed,
    )


@dataclass(frozen=True)
class Application:
    """A simulatable MPSoC benchmark.

    Attributes
    ----------
    name:
        Registry name (``"mat1"``, ``"fft"``, ...).
    config:
        Platform description shared by all candidate crossbars.
    program_builders:
        One zero-argument callable per initiator returning a *fresh*
        operation iterator (programs are consumed by simulation).
    sim_cycles:
        Simulation length that covers the workload with margin.
    default_window:
        Recommended analysis window size for synthesis (roughly the
        workload's iteration period, per the paper's window-sizing
        guidance).
    description:
        One-line summary for reports.
    registry_key:
        Set by :func:`repro.apps.build_application` on *default* builds
        only: the registry name that reproduces this exact application
        in another process. ``None`` for customized or hand-built
        applications (they cannot be faithfully rebuilt by name, so
        cross-process fan-out must not attempt it).
    """

    name: str
    config: SoCConfig
    program_builders: Tuple[ProgramBuilder, ...]
    sim_cycles: int
    default_window: int = 1_000
    description: str = ""
    registry_key: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.program_builders) != self.config.num_initiators:
            raise ApplicationError(
                f"{self.name}: {len(self.program_builders)} programs for "
                f"{self.config.num_initiators} initiators"
            )
        if self.sim_cycles < 1:
            raise ApplicationError(f"{self.name}: sim_cycles must be positive")

    @property
    def num_initiators(self) -> int:
        return self.config.num_initiators

    @property
    def num_targets(self) -> int:
        return self.config.num_targets

    @property
    def num_cores(self) -> int:
        """Total cores; matches the paper's benchmark sizes."""
        return self.num_initiators + self.num_targets

    def build_programs(self):
        """Fresh program iterators, one per initiator."""
        return [builder() for builder in self.program_builders]

    def driver(self, source_key: Optional[str] = None) -> ProgramDriver:
        """This application as a program-driven workload driver.

        ``source_key`` overrides the content key used for replay
        caching; default registry builds derive ``app:<name>`` from
        their ``registry_key``, customized builds stay unkeyed (their
        replays are never cached).
        """
        if source_key is None and self.registry_key is not None:
            source_key = f"app:{self.registry_key}"
        return ProgramDriver(
            config=self.config,
            program_builders=self.program_builders,
            sim_cycles=self.sim_cycles,
            label=self.name,
            source_key=source_key,
        )

    def simulate(
        self,
        it_binding: Sequence[int],
        ti_binding: Sequence[int],
        max_cycles: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate this application on the given crossbar bindings."""
        return simulate_workload(
            self.driver(), it_binding, ti_binding, max_cycles
        )

    def simulate_full_crossbar(
        self, max_cycles: Optional[int] = None
    ) -> SimulationResult:
        """Phase-1 reference run: every core on its own bus."""
        return self.simulate(
            full_crossbar_binding(self.num_targets),
            full_crossbar_binding(self.num_initiators),
            max_cycles,
        )

    def simulate_shared_bus(
        self, max_cycles: Optional[int] = None
    ) -> SimulationResult:
        """Single bus per direction (the paper's shared reference)."""
        return self.simulate(
            shared_bus_binding(self.num_targets),
            shared_bus_binding(self.num_initiators),
            max_cycles,
        )
