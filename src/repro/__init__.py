"""repro -- application-specific STbus crossbar generation.

A full reproduction of Murali & De Micheli, *An Application-Specific
Design Methodology for STbus Crossbar Generation* (DATE 2005): a
cycle-resolved STbus MPSoC platform simulator, window-based traffic
analysis, the MILP/branch-and-bound crossbar synthesis flow, the paper's
five benchmark applications, and the baselines it compares against.

Quickstart
----------
>>> from repro import build_application, CrossbarSynthesizer
>>> app = build_application("mat2")                    # doctest: +SKIP
>>> report = CrossbarSynthesizer().design(app)         # doctest: +SKIP
>>> report.design.bus_count                            # doctest: +SKIP
6

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/``
for the scripts that regenerate every table and figure of the paper.
"""

from repro.apps import APPLICATIONS, Application, build_application
from repro.core import (
    BusBinding,
    CrossbarDesign,
    CrossbarDesignProblem,
    CrossbarSynthesizer,
    SynthesisConfig,
    SynthesisReport,
    average_traffic_design,
    full_crossbar_design,
    peak_bandwidth_design,
    shared_bus_design,
)
from repro.errors import ReproError
from repro.exec import (
    ExecutionEngine,
    ResultCache,
    SynthesisResult,
    SynthesisTask,
)
from repro.core.multi import RobustSynthesisReport, RobustSynthesizer
from repro.pipeline import ArtifactStore, PipelineRunner
from repro.platform import (
    ProgramDriver,
    SimulationResult,
    SoC,
    SoCConfig,
    TimingModel,
    TraceDrivenInitiator,
    WorkloadDriver,
    simulate_workload,
)
from repro.scenarios import (
    Scenario,
    ScenarioSuite,
    ScenarioSuiteRunner,
    SuiteRunReport,
    build_suite,
    load_suite,
    save_suite,
)
from repro.traffic import (
    SyntheticTrafficConfig,
    TrafficTrace,
    WindowedTraffic,
    generate_synthetic_trace,
    load_trace_jsonl,
    save_trace_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # applications
    "Application",
    "APPLICATIONS",
    "build_application",
    # platform
    "SoC",
    "SoCConfig",
    "SimulationResult",
    "TimingModel",
    # workload drivers
    "WorkloadDriver",
    "ProgramDriver",
    "TraceDrivenInitiator",
    "simulate_workload",
    # traffic
    "TrafficTrace",
    "WindowedTraffic",
    "SyntheticTrafficConfig",
    "generate_synthetic_trace",
    "save_trace_jsonl",
    "load_trace_jsonl",
    # synthesis
    "CrossbarSynthesizer",
    "SynthesisConfig",
    "SynthesisReport",
    "CrossbarDesign",
    "BusBinding",
    "CrossbarDesignProblem",
    "average_traffic_design",
    "peak_bandwidth_design",
    "shared_bus_design",
    "full_crossbar_design",
    # execution engine
    "ExecutionEngine",
    "ResultCache",
    "SynthesisResult",
    "SynthesisTask",
    # staged pipeline
    "PipelineRunner",
    "ArtifactStore",
    # scenarios
    "Scenario",
    "ScenarioSuite",
    "ScenarioSuiteRunner",
    "SuiteRunReport",
    "RobustSynthesizer",
    "RobustSynthesisReport",
    "build_suite",
    "save_suite",
    "load_suite",
]
