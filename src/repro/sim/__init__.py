"""Discrete-event simulation kernel.

This subpackage provides the minimal, dependency-free event-driven
simulation machinery on which the STbus platform model
(:mod:`repro.platform`) is built:

* :class:`~repro.sim.engine.Engine` -- the event queue and simulation clock.
* :class:`~repro.sim.engine.Event` -- one-shot completion events.
* :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes (``yield`` a delay, an event, or another process).
* :class:`~repro.sim.resource.Resource` -- an arbitrated, single- or
  multi-server resource with pluggable grant policies.

The kernel is deliberately small: cycle-accurate behaviour lives in the
platform models, which schedule events at cycle granularity.
"""

from repro.sim.engine import Engine, Event
from repro.sim.process import Process, spawn
from repro.sim.resource import Request, Resource, fifo_policy, priority_policy

__all__ = [
    "Engine",
    "Event",
    "Process",
    "spawn",
    "Resource",
    "Request",
    "fifo_policy",
    "priority_policy",
]
