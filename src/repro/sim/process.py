"""Generator-based cooperative processes.

A process wraps a Python generator. Each ``yield`` suspends the process
until the yielded *wait target* resolves:

* ``int`` -- resume after that many cycles (``yield 0`` resumes later in
  the same cycle, after already-scheduled events),
* :class:`~repro.sim.engine.Event` -- resume when the event triggers; the
  value sent back into the generator is the event's value,
* :class:`Process` -- resume when the other process finishes; the value
  sent back is that process's return value.

This mirrors the structure of SystemC threads closely enough to express
bus masters, arbiters and memory models naturally, while remaining plain
Python.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event

__all__ = ["Process", "spawn"]


class Process:
    """Drives a generator to completion on an :class:`Engine`.

    The process starts automatically on the cycle it is created (at the
    current simulation time), or -- with ``start_at`` -- at a later
    absolute cycle: workload drivers that replay recorded stimulus use
    this to hold each initiator off the fabric until its first recorded
    transaction is due, instead of waking every process at cycle zero.
    Its :attr:`done` event triggers when the generator returns; the
    generator's return value becomes the event value and :attr:`result`.
    """

    def __init__(
        self,
        engine: Engine,
        generator: Generator[Any, Any, Any],
        name: str = "process",
        start_at: Optional[int] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self._engine = engine
        self._generator = generator
        self.name = name
        self.done = Event(engine)
        if start_at is None:
            engine.schedule(0, self._resume, None)
        else:
            if start_at < engine.now:
                raise SimulationError(
                    f"process {name!r} cannot start at cycle {start_at}, "
                    f"current time is {engine.now}"
                )
            engine.schedule_at(start_at, self._resume, None)

    @property
    def finished(self) -> bool:
        """Whether the wrapped generator has run to completion."""
        return self.done.triggered

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` until finished)."""
        return self.done.value

    def _resume(self, sent_value: Any) -> None:
        try:
            wait_target = self._generator.send(sent_value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        self._wait_on(wait_target)

    def _wait_on(self, wait_target: Any) -> None:
        if isinstance(wait_target, int):
            if wait_target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay "
                    f"({wait_target})"
                )
            self._engine.schedule(wait_target, self._resume, None)
        elif isinstance(wait_target, Event):
            wait_target.add_callback(self._on_event)
        elif isinstance(wait_target, Process):
            wait_target.done.add_callback(self._on_event)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported wait target "
                f"{wait_target!r} (expected int, Event or Process)"
            )

    def _on_event(self, event: Event) -> None:
        self._resume(event.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(
    engine: Engine,
    generator: Generator[Any, Any, Any],
    name: Optional[str] = None,
    start_at: Optional[int] = None,
) -> Process:
    """Create and start a :class:`Process` for ``generator``.

    ``start_at`` defers the first resume to an absolute cycle (driver
    scheduling: replayed initiators enter the fabric at their first
    recorded issue cycle).
    """
    return Process(
        engine,
        generator,
        name or getattr(generator, "__name__", "process"),
        start_at=start_at,
    )
