"""Event queue and simulation clock.

The engine keeps a binary heap of ``(time, sequence, callback)`` entries.
Time is measured in *cycles* and stored as an integer; the platform models
only ever schedule whole-cycle delays, which keeps comparisons exact and
the simulation fully deterministic. The ``sequence`` counter breaks ties
between events scheduled for the same cycle in FIFO order, so repeated
runs of the same model produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = ["Engine", "Event"]


class Engine:
    """A deterministic discrete-event simulation engine.

    Example
    -------
    >>> engine = Engine()
    >>> hits = []
    >>> engine.schedule(5, hits.append, 5)
    >>> engine.schedule(2, hits.append, 2)
    >>> engine.run()
    5
    >>> hits
    [2, 5]
    """

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._now = 0
        self._sequence = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run at absolute cycle ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, current time is {self._now}"
            )
        heapq.heappush(self._queue, (int(time), self._sequence, callback, args))
        self._sequence += 1

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty.
        """
        if not self._queue:
            return False
        time, _seq, callback, args = heapq.heappop(self._queue)
        self._now = time
        callback(*args)
        return True

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue drains or the clock reaches ``until``.

        Returns the final simulation time. When ``until`` is given, the
        clock is advanced to exactly ``until`` even if the last event fired
        earlier, mirroring how a hardware simulation runs for a fixed number
        of cycles.
        """
        if self._running:
            raise SimulationError("engine is already running (reentrant run())")
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                if until is not None and self._queue[0][0] > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop a running simulation after the current event completes."""
        self._stopped = True


class Event:
    """A one-shot event that processes may wait on.

    An event starts *untriggered*; calling :meth:`succeed` triggers it
    exactly once, records an optional value, and schedules all registered
    callbacks at the current cycle. Triggering twice is an error: in a
    cycle-accurate model a completion that fires twice is always a bug.
    """

    __slots__ = ("_engine", "_callbacks", "_triggered", "_value")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._callbacks: list[Callable[[Event], None]] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (``None`` until triggered)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, waking every waiter at the current cycle."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._value = value
        for callback in self._callbacks:
            self._engine.schedule(0, callback, self)
        self._callbacks.clear()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately if triggered."""
        if self._triggered:
            self._engine.schedule(0, callback, self)
        else:
            self._callbacks.append(callback)
