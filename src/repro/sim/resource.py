"""Arbitrated resources.

A :class:`Resource` models a piece of hardware that serves one holder at a
time (or ``capacity`` holders): a bus, a memory port, an adapter. Waiters
request the resource and receive an :class:`~repro.sim.engine.Event` that
triggers when they are granted. When the resource frees up, a pluggable
*grant policy* chooses the next holder from the pending requests -- this is
where bus arbitration plugs in (see :mod:`repro.platform.arbiter`).

The resource also keeps an optional log of ``(start, end, owner)`` busy
intervals, which the traffic-analysis layer uses to reconstruct per-target
activity timelines.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event

__all__ = ["Request", "Resource", "fifo_policy", "priority_policy"]


class Request:
    """A pending or granted claim on a :class:`Resource`.

    Attributes
    ----------
    owner:
        Arbitrary identifier of the requester (e.g. an initiator index).
        Grant policies may use it to implement priority schemes.
    priority:
        Smaller values are more urgent under :func:`priority_policy`.
    arrival:
        Cycle at which the request was made.
    granted:
        Event that triggers when the resource is granted to this request.
    """

    __slots__ = ("owner", "priority", "arrival", "sequence", "granted", "grant_time")

    def __init__(
        self,
        owner: Any,
        priority: int,
        arrival: int,
        sequence: int,
        granted: Event,
    ) -> None:
        self.owner = owner
        self.priority = priority
        self.arrival = arrival
        self.sequence = sequence
        self.granted = granted
        self.grant_time: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Request owner={self.owner!r} priority={self.priority} "
            f"arrival={self.arrival}>"
        )


GrantPolicy = Callable[[Sequence[Request]], Request]


def fifo_policy(pending: Sequence[Request]) -> Request:
    """Grant the oldest request (ties broken by submission order)."""
    return min(pending, key=lambda req: (req.arrival, req.sequence))


def priority_policy(pending: Sequence[Request]) -> Request:
    """Grant the most urgent request; FIFO among equal priorities."""
    return min(pending, key=lambda req: (req.priority, req.arrival, req.sequence))


class Resource:
    """A ``capacity``-server resource with pluggable arbitration.

    Parameters
    ----------
    engine:
        Simulation engine that owns this resource.
    capacity:
        Number of simultaneous holders (1 for a bus).
    policy:
        Grant policy choosing among pending requests; default FIFO.
    record_busy:
        When true, completed holds are logged as ``(start, end, owner)``
        tuples in :attr:`busy_log`.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: int = 1,
        policy: GrantPolicy = fifo_policy,
        record_busy: bool = False,
        name: str = "resource",
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self._engine = engine
        self._capacity = capacity
        self._policy = policy
        self._pending: List[Request] = []
        self._holders: List[Request] = []
        self._sequence = 0
        self.name = name
        self.record_busy = record_busy
        self.busy_log: List[Tuple[int, int, Any]] = []

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneous holders."""
        return self._capacity

    @property
    def in_use(self) -> int:
        """Number of current holders."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._pending)

    def acquire(self, owner: Any = None, priority: int = 0) -> Request:
        """Request the resource.

        Returns the :class:`Request`; wait on ``request.granted`` to learn
        when the hold begins. The grant (if capacity is free) is scheduled
        for the *current* cycle but delivered through the event queue, so
        competing requests issued in the same cycle are arbitrated
        together by the policy.
        """
        request = Request(
            owner=owner,
            priority=priority,
            arrival=self._engine.now,
            sequence=self._sequence,
            granted=Event(self._engine),
        )
        self._sequence += 1
        self._pending.append(request)
        self._engine.schedule(0, self._dispatch)
        return request

    def release(self, request: Request) -> None:
        """Release a previously granted hold and re-arbitrate."""
        if request not in self._holders:
            raise SimulationError(
                f"release of {request!r} which does not hold {self.name!r}"
            )
        self._holders.remove(request)
        if self.record_busy and request.grant_time is not None:
            self.busy_log.append((request.grant_time, self._engine.now, request.owner))
        self._engine.schedule(0, self._dispatch)

    def cancel(self, request: Request) -> None:
        """Withdraw a pending (not yet granted) request."""
        if request in self._pending:
            self._pending.remove(request)
        elif request in self._holders:
            raise SimulationError("cannot cancel a granted request; release it")

    def _dispatch(self) -> None:
        while self._pending and len(self._holders) < self._capacity:
            chosen = self._policy(self._pending)
            self._pending.remove(chosen)
            self._holders.append(chosen)
            chosen.grant_time = self._engine.now
            chosen.granted.succeed(chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self.in_use}/{self._capacity} held, "
            f"{self.queue_length} waiting>"
        )
