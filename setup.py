"""Setuptools shim.

Package metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on minimal environments that lack the ``wheel``
package (legacy ``setup.py develop`` editable installs).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
