#!/usr/bin/env python3
"""Documentation consistency gate (run by the CI docs job).

Two classes of rot this catches:

* **Broken internal links** -- every relative markdown link in
  ``README.md`` and ``docs/*.md`` must resolve to an existing file
  (anchors are stripped; external ``http(s):`` links are not fetched).
* **Stale CLI examples** -- every fenced ``repro …`` invocation in the
  docs must still parse against the real argument parser
  (``repro.cli.build_parser``), and every referenced subcommand must
  answer ``--help`` with exit code 0. Commands are parsed, never
  executed, so the check is fast and side-effect free.

Exit code 0 when everything holds, 1 with a per-problem report
otherwise.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```")


def iter_links(text: str):
    for match in LINK_RE.finditer(text):
        yield match.group(1)


def check_links() -> list:
    problems = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for target in iter_links(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def iter_fenced_commands(text: str):
    """Every ``repro …`` invocation in fenced code blocks, with
    backslash line continuations joined."""
    in_fence = False
    pending = ""
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        line = pending + line.strip()
        pending = ""
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        if line.startswith("repro ") or line == "repro":
            yield line


def check_cli_examples() -> list:
    from repro.cli import build_parser

    problems = []
    subcommands = set()
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for command in iter_fenced_commands(text):
            if "<" in command:  # placeholder form like `repro <command>`
                continue
            try:
                tokens = shlex.split(command, comments=True)[1:]
            except ValueError as error:
                problems.append(
                    f"{doc.relative_to(REPO)}: unparseable example "
                    f"{command!r} ({error})"
                )
                continue
            if tokens:
                subcommands.add(tokens[0])
                if len(tokens) > 1 and not tokens[1].startswith("-"):
                    # possible nested subcommand (scenarios run, ...)
                    subcommands.add((tokens[0], tokens[1]))
            try:
                build_parser().parse_args(tokens)
            except SystemExit as error:
                if error.code not in (0, None):
                    problems.append(
                        f"{doc.relative_to(REPO)}: example does not "
                        f"parse: {command!r}"
                    )
    for entry in sorted(
        subcommands, key=lambda e: e if isinstance(e, tuple) else (e,)
    ):
        argv = list(entry) if isinstance(entry, tuple) else [entry]
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv, "--help"],
            capture_output=True,
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        )
        if proc.returncode != 0:
            problems.append(
                f"`repro {' '.join(argv)} --help` exited "
                f"{proc.returncode}: {proc.stderr.decode()[:200]}"
            )
    return problems


def main() -> int:
    problems = check_links() + check_cli_examples()
    if problems:
        print(f"docs check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"docs check: OK ({len(DOC_FILES)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
